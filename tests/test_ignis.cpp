#include "ignis/clifford.hpp"
#include "ignis/mitigation.hpp"
#include "ignis/rb.hpp"
#include "ignis/tomography.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "noise/trajectory.hpp"
#include "sim/simulator.hpp"

namespace qtc::ignis {
namespace {

// --- Clifford group ----------------------------------------------------------

TEST(Clifford, GroupHas24DistinctElements) {
  for (int a = 0; a < kNumCliffords1Q; ++a)
    for (int b = a + 1; b < kNumCliffords1Q; ++b)
      EXPECT_FALSE(
          clifford_matrix(a).equal_up_to_phase(clifford_matrix(b), 1e-9))
          << a << " vs " << b;
}

TEST(Clifford, IndexZeroIsIdentity) {
  EXPECT_TRUE(clifford_matrix(0).equal_up_to_phase(Matrix::identity(2)));
  EXPECT_TRUE(clifford_ops(0, 0).empty());
}

TEST(Clifford, CompositionTableIsConsistent) {
  for (int a = 0; a < kNumCliffords1Q; ++a)
    for (int b = 0; b < kNumCliffords1Q; ++b) {
      const Matrix expected = clifford_matrix(b) * clifford_matrix(a);
      EXPECT_TRUE(clifford_matrix(clifford_compose(a, b))
                      .equal_up_to_phase(expected, 1e-9));
    }
}

TEST(Clifford, InverseComposesToIdentity) {
  for (int a = 0; a < kNumCliffords1Q; ++a)
    EXPECT_EQ(clifford_compose(a, clifford_inverse(a)), 0);
}

TEST(Clifford, OpsMatchMatrices) {
  for (int a = 0; a < kNumCliffords1Q; ++a) {
    QuantumCircuit qc(1);
    for (auto& op : clifford_ops(a, 0)) qc.append(std::move(op));
    const Matrix u = sim::UnitarySimulator().unitary(qc);
    EXPECT_TRUE(u.equal_up_to_phase(clifford_matrix(a), 1e-9)) << a;
  }
}

TEST(Clifford, LookupByMatrix) {
  EXPECT_EQ(clifford_index_of(op_matrix(OpKind::H)),
            clifford_index_of(op_matrix(OpKind::H)));
  EXPECT_GE(clifford_index_of(op_matrix(OpKind::S)), 0);
  EXPECT_EQ(clifford_index_of(op_matrix(OpKind::T)), -1);  // T is not Clifford
}

TEST(Clifford, BadIndexThrows) {
  EXPECT_THROW(clifford_matrix(24), std::out_of_range);
  EXPECT_THROW(clifford_ops(-1, 0), std::out_of_range);
}

// --- randomized benchmarking ---------------------------------------------------

TEST(Rb, SequenceInvertsToIdentityNoiselessly) {
  Rng rng(5);
  sim::StatevectorSimulator sim;
  for (int length : {1, 3, 8, 20}) {
    const QuantumCircuit qc = rb_sequence(length, 1, 0, rng);
    const auto result = sim.run(qc, 500);
    EXPECT_EQ(result.counts.count("0"), 500) << "length " << length;
  }
}

TEST(Rb, NoiselessRunFitsNoDecay) {
  RbConfig config;
  config.lengths = {1, 4, 16};
  config.sequences_per_length = 3;
  config.shots = 128;
  const RbResult result = run_rb(config, noise::NoiseModel{});
  for (const auto& p : result.points) EXPECT_NEAR(p.survival, 1.0, 1e-12);
  EXPECT_NEAR(result.decay, 1.0, 1e-6);
  EXPECT_NEAR(result.epc(), 0.0, 1e-6);
}

TEST(Rb, RecoversInjectedDepolarizingRate) {
  // Depolarizing p after every 1q gate. Each Clifford averages ~2 gates
  // (H/S decompositions of lengths 0..5), so EPC should land in the right
  // ballpark: between p/2 and 4p.
  const double p = 0.02;
  noise::NoiseModel model;
  model.add_all_qubit_error(noise::depolarizing(p), OpKind::H);
  model.add_all_qubit_error(noise::depolarizing(p), OpKind::S);
  RbConfig config;
  config.lengths = {1, 2, 4, 8, 16, 32};
  config.sequences_per_length = 12;
  config.shots = 400;
  const RbResult result = run_rb(config, model);
  EXPECT_GT(result.epc(), p / 2);
  EXPECT_LT(result.epc(), 4 * p);
  // Survival must decay monotonically-ish: first point above last point.
  EXPECT_GT(result.points.front().survival,
            result.points.back().survival + 0.02);
}

TEST(Rb, FitRecoversExactExponential) {
  RbResult r;
  const double a = 0.5, p = 0.93;
  for (int m : {1, 2, 4, 8, 16, 32, 64})
    r.points.push_back({m, a * std::pow(p, m) + 0.5});
  fit_decay(r);
  EXPECT_NEAR(r.decay, p, 1e-9);
  EXPECT_NEAR(r.amplitude, a, 1e-9);
}

TEST(Rb, BadLengthThrows) {
  Rng rng(1);
  EXPECT_THROW(rb_sequence(0, 1, 0, rng), std::invalid_argument);
}


TEST(InterleavedRb, SequenceInvertsNoiselessly) {
  Rng rng(3);
  sim::StatevectorSimulator sim;
  for (int length : {1, 4, 10}) {
    const QuantumCircuit qc = interleaved_rb_sequence(length, 1, 0, 5, rng);
    const auto result = sim.run(qc, 200);
    EXPECT_EQ(result.counts.count("0"), 200) << "length " << length;
  }
}

TEST(InterleavedRb, IsolatesTheNoisyGate) {
  // Only H carries error; interleaving the Clifford that IS plain H must
  // report a larger per-gate error than interleaving the identity.
  const double p = 0.02;
  noise::NoiseModel model;
  model.add_all_qubit_error(noise::depolarizing(p), OpKind::H);
  const int h_index = clifford_index_of(op_matrix(OpKind::H));
  ASSERT_GE(h_index, 0);
  RbConfig config;
  config.lengths = {1, 2, 4, 8, 16, 32};
  config.sequences_per_length = 12;
  config.shots = 512;
  const InterleavedRbResult with_h =
      run_interleaved_rb(config, h_index, model);
  const InterleavedRbResult with_id = run_interleaved_rb(config, 0, model);
  EXPECT_GT(with_h.gate_error(), 0.0);
  EXPECT_GT(with_h.gate_error(), with_id.gate_error());
  // The H error estimate should land in the right ballpark (~p/2 .. 2p).
  EXPECT_GT(with_h.gate_error(), p / 4);
  EXPECT_LT(with_h.gate_error(), 3 * p);
}

TEST(InterleavedRb, IdentityInterleavingGivesNearZeroError) {
  noise::NoiseModel model;
  model.add_all_qubit_error(noise::depolarizing(0.01), OpKind::H);
  RbConfig config;
  config.lengths = {1, 4, 16, 64};
  config.sequences_per_length = 8;
  config.shots = 400;
  const InterleavedRbResult r = run_interleaved_rb(config, 0, model);
  EXPECT_LT(std::abs(r.gate_error()), 0.01);
}

// --- tomography ------------------------------------------------------------------

TEST(Tomography, SettingsEnumerateAllBases) {
  const auto settings = tomography_settings(2);
  EXPECT_EQ(settings.size(), 9u);
  EXPECT_NE(std::find(settings.begin(), settings.end(), "XY"), settings.end());
}

TEST(Tomography, CircuitAddsRotationsAndMeasurements) {
  QuantumCircuit prep(2);
  prep.h(0);
  const QuantumCircuit qc = tomography_circuit(prep, "XZ");
  EXPECT_EQ(qc.count(OpKind::Measure), 2);
  // X basis on qubit 0 (rightmost char): one extra H beyond the prep H.
  EXPECT_EQ(qc.count(OpKind::H), 2);
}

TEST(Tomography, ReconstructsBellStateNoiselessly) {
  QuantumCircuit prep(2);
  prep.h(0).cx(0, 1);
  const TomographyResult result =
      state_tomography(prep, noise::NoiseModel{}, 4096, 11);
  sim::StatevectorSimulator sim;
  const auto reference = sim.statevector(prep).amplitudes();
  EXPECT_GT(result.fidelity(reference), 0.97);
  EXPECT_NEAR(result.rho.trace().real(), 1.0, 0.02);
  EXPECT_TRUE(result.rho.is_hermitian(1e-9));
}

TEST(Tomography, ReconstructsSingleQubitPlusState) {
  QuantumCircuit prep(1);
  prep.h(0);
  const TomographyResult result =
      state_tomography(prep, noise::NoiseModel{}, 8192, 3);
  EXPECT_NEAR(result.rho(0, 1).real(), 0.5, 0.03);
  EXPECT_NEAR(result.rho(0, 0).real(), 0.5, 0.03);
}

TEST(Tomography, NoiseReducesReconstructedFidelity) {
  QuantumCircuit prep(2);
  prep.h(0).cx(0, 1);
  const auto noisy_model = noise::uniform_depolarizing(0.01, 0.08);
  const TomographyResult noisy =
      state_tomography(prep, noisy_model, 4096, 17);
  const TomographyResult clean =
      state_tomography(prep, noise::NoiseModel{}, 4096, 17);
  sim::StatevectorSimulator sim;
  const auto reference = sim.statevector(prep).amplitudes();
  EXPECT_LT(noisy.fidelity(reference), clean.fidelity(reference) - 0.02);
}

TEST(Tomography, RejectsNonUnitaryPreparation) {
  QuantumCircuit prep(1, 1);
  prep.measure(0, 0);
  EXPECT_THROW(tomography_circuit(prep, "Z"), std::invalid_argument);
}

// --- measurement mitigation ---------------------------------------------------

TEST(Mitigation, CalibrationMatrixIsColumnStochastic) {
  noise::NoiseModel model;
  model.set_readout_error(0, {0.1, 0.05});
  model.set_readout_error(1, {0.08, 0.12});
  const auto mitigator = MeasurementMitigator::calibrate(2, model, 4096, 5);
  const auto& a = mitigator.confusion();
  for (std::size_t col = 0; col < a.size(); ++col) {
    double sum = 0;
    for (std::size_t row = 0; row < a.size(); ++row) sum += a[row][col];
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  // Diagonal dominates for small error rates.
  EXPECT_GT(a[0][0], 0.7);
  EXPECT_GT(a[3][3], 0.7);
}

TEST(Mitigation, RestoresDeterministicCounts) {
  noise::NoiseModel model;
  model.set_readout_error(0, {0.15, 0.15});
  const auto mitigator = MeasurementMitigator::calibrate(1, model, 20000, 7);
  QuantumCircuit qc(1, 1);
  qc.x(0).measure(0, 0);
  noise::TrajectorySimulator sim(13);
  const auto raw = sim.run(qc, model, 20000);
  EXPECT_LT(raw.probability("1"), 0.9);  // visibly corrupted
  const auto corrected = mitigator.apply(raw);
  EXPECT_GT(corrected.probability("1"), 0.97);
}

TEST(Mitigation, ImprovesBellDistribution) {
  noise::NoiseModel model;
  model.set_readout_error(0, {0.1, 0.1});
  model.set_readout_error(1, {0.12, 0.08});
  const auto mitigator = MeasurementMitigator::calibrate(2, model, 20000, 9);
  QuantumCircuit qc(2, 2);
  qc.h(0).cx(0, 1).measure_all();
  noise::TrajectorySimulator noisy_sim(21);
  sim::StatevectorSimulator ideal_sim(22);
  const auto raw = noisy_sim.run(qc, model, 20000);
  const auto ideal = ideal_sim.run(qc, 20000).counts;
  const auto corrected = mitigator.apply(raw);
  const double tv_raw =
      MeasurementMitigator::total_variation(raw, ideal, 2);
  const double tv_corrected =
      MeasurementMitigator::total_variation(corrected, ideal, 2);
  EXPECT_LT(tv_corrected, tv_raw / 2);
}

TEST(Mitigation, IdentityConfusionIsNoOp) {
  std::vector<std::vector<double>> eye{{1, 0}, {0, 1}};
  const MeasurementMitigator mitigator(eye);
  sim::Counts raw;
  for (int i = 0; i < 60; ++i) raw.record("0");
  for (int i = 0; i < 40; ++i) raw.record("1");
  const auto out = mitigator.apply(raw);
  EXPECT_EQ(out.count("0"), 60);
  EXPECT_EQ(out.count("1"), 40);
}

TEST(Mitigation, ValidationErrors) {
  EXPECT_THROW(MeasurementMitigator({{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}),
               std::invalid_argument);
  EXPECT_THROW(
      MeasurementMitigator::calibrate(0, noise::NoiseModel{}, 100, 1),
      std::invalid_argument);
  const MeasurementMitigator m(
      std::vector<std::vector<double>>{{1, 0}, {0, 1}});
  sim::Counts wrong_width;
  wrong_width.record("00");
  EXPECT_THROW(m.apply(wrong_width), std::invalid_argument);
}

}  // namespace
}  // namespace qtc::ignis
