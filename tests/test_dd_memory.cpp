// Bounded-memory properties of the decision-diagram package: garbage
// collection must be invisible to results (bitwise), the free list must
// recycle storage on deep circuits, the fixed-size compute tables must stay
// correct under eviction, and the memoized inner product must visit shared
// structure once instead of exponentially often.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "aqua/algorithms.hpp"
#include "core/gates.hpp"
#include "core/rng.hpp"
#include "dd/package.hpp"
#include "dd/simulator.hpp"

namespace qtc::dd {
namespace {

/// Scoped QTC_DD_GC_THRESHOLD override ("1" forces collection at every safe
/// point, "0" disables collection entirely).
class ScopedGcThreshold {
 public:
  explicit ScopedGcThreshold(const char* value) {
    setenv("QTC_DD_GC_THRESHOLD", value, 1);
  }
  ~ScopedGcThreshold() { unsetenv("QTC_DD_GC_THRESHOLD"); }
};

::testing::AssertionResult bitwise_equal(const std::vector<cplx>& a,
                                         const std::vector<cplx>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure() << "size mismatch";
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::memcmp(&a[i], &b[i], sizeof(cplx)) != 0)
      return ::testing::AssertionFailure()
             << "amplitude " << i << " differs: (" << a[i].real() << ","
             << a[i].imag() << ") vs (" << b[i].real() << "," << b[i].imag()
             << ")";
  return ::testing::AssertionSuccess();
}

QuantumCircuit random_circuit(int n, int gates, std::uint64_t seed) {
  Rng rng(seed);
  QuantumCircuit qc(n, n);
  for (int g = 0; g < gates; ++g) {
    const int q = static_cast<int>(rng.index(n));
    const int q2 = (q + 1 + static_cast<int>(rng.index(n - 1))) % n;
    switch (rng.index(6)) {
      case 0:
        qc.h(q);
        break;
      case 1:
        qc.t(q);
        break;
      case 2:
        qc.rx(rng.uniform(-PI, PI), q);
        break;
      case 3:
        qc.rz(rng.uniform(-PI, PI), q);
        break;
      case 4:
        qc.cx(q, q2);
        break;
      default:
        qc.cz(q, q2);
    }
  }
  return qc;
}

QuantumCircuit ghz_circuit(int n) {
  QuantumCircuit qc(n, n);
  qc.h(0);
  for (int i = 1; i < n; ++i) qc.cx(i - 1, i);
  return qc;
}

/// Deep but structurally compact circuit: GHZ build/unbuild blocks keep the
/// reachable state tiny while the gate stream goes into the thousands. Each
/// block uses fresh rotation angles (undone within the block), so every block
/// allocates new gate and state nodes that become garbage as soon as the
/// block completes — exactly the access pattern the collector targets.
QuantumCircuit deep_compact_circuit(int n, int min_gates) {
  QuantumCircuit qc(n, n);
  int block = 0;
  while (static_cast<int>(qc.size()) < min_gates) {
    const double theta = 0.1 + 1e-3 * block++;
    qc.h(0);
    for (int i = 1; i < n; ++i) qc.cx(i - 1, i);
    for (int i = 0; i < n; ++i) qc.rz(theta + 0.01 * i, i);
    for (int i = 0; i < n; ++i) qc.rz(-(theta + 0.01 * i), i);
    for (int i = n - 1; i >= 1; --i) qc.cx(i - 1, i);
    qc.h(0);
  }
  return qc;
}

// --- GC invariance: results must be bitwise identical with GC forced after
// --- every operation versus GC disabled --------------------------------------

class GcInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GcInvariance, StatevectorBitwiseIdenticalOnRandomCircuits) {
  const QuantumCircuit qc =
      random_circuit(3 + static_cast<int>(GetParam() % 4),
                     30 + static_cast<int>(GetParam() * 11 % 30), GetParam());
  std::vector<cplx> gc_off, gc_forced;
  {
    ScopedGcThreshold off("0");
    gc_off = DDSimulator().statevector(qc);
  }
  {
    ScopedGcThreshold forced("1");
    gc_forced = DDSimulator().statevector(qc);
  }
  EXPECT_TRUE(bitwise_equal(gc_off, gc_forced));
}

TEST_P(GcInvariance, FixedSeedCountsIdenticalOnRandomCircuits) {
  QuantumCircuit qc = random_circuit(4, 40, GetParam() ^ 0xD0);
  qc.measure_all();
  sim::Counts off, forced;
  std::size_t forced_gc_runs = 0;
  {
    ScopedGcThreshold env("0");
    DDSimulator sim(GetParam() + 7);
    off = sim.run(qc, 512).counts;
  }
  {
    ScopedGcThreshold env("1");
    DDSimulator sim(GetParam() + 7);
    const DDRunResult r = sim.run(qc, 512);
    forced = r.counts;
    forced_gc_runs = r.gc_runs;
  }
  EXPECT_EQ(off.histogram, forced.histogram);
  EXPECT_GT(forced_gc_runs, 0u) << "threshold 1 should force collections";
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcInvariance,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(GcInvariance, StatevectorBitwiseIdenticalOnGhzAndQft) {
  for (const QuantumCircuit& qc :
       {ghz_circuit(8), aqua::qft(6, true), aqua::qft(5, false)}) {
    std::vector<cplx> gc_off, gc_forced;
    {
      ScopedGcThreshold off("0");
      gc_off = DDSimulator().statevector(qc);
    }
    {
      ScopedGcThreshold forced("1");
      gc_forced = DDSimulator().statevector(qc);
    }
    EXPECT_TRUE(bitwise_equal(gc_off, gc_forced));
  }
}

TEST(GcInvariance, EquivalenceOfGcOnAndOffCountsOnGhz) {
  QuantumCircuit qc = ghz_circuit(10);
  qc.measure_all();
  sim::Counts off, forced;
  {
    ScopedGcThreshold env("0");
    DDSimulator sim(42);
    off = sim.run(qc, 1024).counts;
  }
  {
    ScopedGcThreshold env("1");
    DDSimulator sim(42);
    forced = sim.run(qc, 1024).counts;
  }
  EXPECT_EQ(off.histogram, forced.histogram);
}

// --- deep circuits: bounded live set, free-list reuse ------------------------

TEST(DDMemory, DeepCircuitKeepsLiveNodesBoundedByThreshold) {
  constexpr std::size_t kThreshold = 512;
  QuantumCircuit qc = deep_compact_circuit(16, 5000);
  ASSERT_GE(qc.size(), 5000u);
  qc.measure_all();
  ScopedGcThreshold env("512");
  DDSimulator sim(7);
  const DDRunResult r = sim.run(qc, 64);
  EXPECT_EQ(r.counts.shots, 64);
  EXPECT_GT(r.gc_runs, 0u);
  EXPECT_GT(r.freed_nodes, 0u);
  EXPECT_GT(r.reused_nodes, 0u) << "free list never recycled storage";
  // Collection triggers once the live count crosses the threshold, so the
  // high-water mark is the threshold plus (at most) one operation's working
  // set — far below the unbounded-run total.
  EXPECT_LE(r.peak_live_nodes, 2 * kThreshold);
  EXPECT_GT(r.allocated_nodes, 10 * r.peak_live_nodes)
      << "deep run should construct far more nodes than ever live at once";
}

TEST(DDMemory, DeepCircuitCountsMatchUnboundedRun) {
  QuantumCircuit qc = deep_compact_circuit(16, 5000);
  qc.measure_all();
  sim::Counts bounded, unbounded;
  {
    ScopedGcThreshold env("512");
    DDSimulator sim(11);
    bounded = sim.run(qc, 128).counts;
  }
  {
    ScopedGcThreshold env("0");
    DDSimulator sim(11);
    unbounded = sim.run(qc, 128).counts;
  }
  EXPECT_EQ(bounded.histogram, unbounded.histogram);
}

TEST(DDMemory, ForcedCollectFreesUnpinnedAndKeepsPinned) {
  ScopedGcThreshold env("0");  // manual collection only
  Package pkg(3);
  Package::VRef pinned = pkg.hold(pkg.make_basis_state(0b101));
  const VEdge doomed = pkg.make_basis_state(0b010);
  (void)doomed;
  const std::size_t live_before = pkg.live_nodes();
  const std::size_t freed = pkg.collect_garbage();
  EXPECT_GT(freed, 0u);
  EXPECT_LT(pkg.live_nodes(), live_before);
  // The pinned chain survives intact.
  EXPECT_EQ(pkg.node_count(pinned.edge()), 3u);
  EXPECT_NEAR(std::abs(pkg.amplitude(pinned.edge(), 0b101) - cplx(1, 0)), 0,
              1e-12);
  // Rebuilding the collected state reuses freed storage.
  const VEdge rebuilt = pkg.make_basis_state(0b010);
  EXPECT_GT(pkg.stats().vector_nodes_reused, 0u);
  EXPECT_NEAR(std::abs(pkg.amplitude(rebuilt, 0b010) - cplx(1, 0)), 0, 1e-12);
}

TEST(DDMemory, RefHandleCopiesKeepPinning) {
  ScopedGcThreshold env("0");
  Package pkg(2);
  Package::VRef outer;
  {
    Package::VRef inner = pkg.hold(pkg.make_basis_state(0b11));
    outer = inner;  // copy: second pin
  }  // inner released
  pkg.collect_garbage();
  EXPECT_EQ(pkg.node_count(outer.edge()), 2u);
  EXPECT_NEAR(std::abs(pkg.amplitude(outer.edge(), 0b11) - cplx(1, 0)), 0,
              1e-12);
}

TEST(DDMemory, ProgrammaticThresholdOverridesEnvironment) {
  ScopedGcThreshold env("0");
  Package pkg(4);
  EXPECT_EQ(pkg.gc_threshold(), 0u);
  pkg.set_gc_threshold(1);
  Package::VRef state = pkg.hold(pkg.make_zero_state());
  const MEdge h = pkg.make_gate(op_matrix(OpKind::H), {0});
  state = pkg.hold(pkg.multiply(h, state.edge()));
  const MEdge cx = pkg.make_gate(op_matrix(OpKind::CX), {0, 1});
  state = pkg.hold(pkg.multiply(cx, state.edge()));
  EXPECT_GT(pkg.stats().gc_runs, 0u);
  EXPECT_NEAR(pkg.norm_squared(state.edge()), 1.0, 1e-12);
}

// --- fixed-size compute tables: correct under eviction -----------------------

TEST(DDMemory, TinyComputeTablesEvictButStayCorrect) {
  ScopedGcThreshold env("0");
  const int n = 4;
  Package small(n, /*compute_table_bits=*/4);  // 16 slots per table
  Package big(n);
  Package::VRef ss = small.hold(small.make_zero_state());
  Package::VRef sb = big.hold(big.make_zero_state());
  Rng rng(17);
  for (int g = 0; g < 60; ++g) {
    const int q = static_cast<int>(rng.index(n));
    const int q2 = (q + 1 + static_cast<int>(rng.index(n - 1))) % n;
    Matrix m;
    std::vector<int> qubits;
    if (rng.bernoulli(0.5)) {
      m = u3_matrix(rng.uniform(0, PI), rng.uniform(-PI, PI),
                    rng.uniform(-PI, PI));
      qubits = {q};
    } else {
      m = op_matrix(OpKind::CX);
      qubits = {q, q2};
    }
    ss = small.hold(small.multiply(small.make_gate(m, qubits), ss.edge()));
    sb = big.hold(big.multiply(big.make_gate(m, qubits), sb.edge()));
  }
  const auto vs = small.to_vector(ss.edge());
  const auto vb = big.to_vector(sb.edge());
  EXPECT_LT(max_abs_diff(vs, vb), 1e-10);
  const PackageStats& st = small.stats();
  const std::size_t evictions = st.add_table.evictions +
                                st.madd_table.evictions +
                                st.mulv_table.evictions +
                                st.mulm_table.evictions;
  EXPECT_GT(evictions, 0u) << "16-slot tables should have collided";
  EXPECT_GT(st.mulv_table.hits + st.mulv_table.misses, 0u);
}

// --- memoized inner product: shared structure visited once -------------------

TEST(DDMemory, InnerProductVisitsSharedStructureOnce) {
  // |+>^24: one node per level, both children of each node share the child
  // below. The naive recursion visits 2^24 pairs; the memoized one visits
  // each of the 24 shared pairs once.
  const int n = 24;
  QuantumCircuit qc(n);
  for (int q = 0; q < n; ++q) qc.h(q);
  DDSimulator sim;
  auto handle = sim.simulate(qc);
  const std::size_t before = handle.package->stats().inner_visits;
  const cplx ip =
      handle.package->inner_product(handle.state, handle.state);
  EXPECT_NEAR(std::abs(ip - cplx(1, 0)), 0, 1e-9);
  const PackageStats& st = handle.package->stats();
  const std::size_t visits = st.inner_visits - before;
  EXPECT_LE(visits, static_cast<std::size_t>(4 * n))
      << "memoized inner product should be linear in shared nodes";
  EXPECT_GT(st.inner_memo_hits, 0u);
}

TEST(DDMemory, FidelityOnGhzIsCheapAndCorrect) {
  const int n = 20;
  DDSimulator sim;
  auto handle = sim.simulate(ghz_circuit(n).unitary_part());
  const std::size_t before = handle.package->stats().inner_visits;
  EXPECT_NEAR(handle.package->fidelity(handle.state, handle.state), 1.0,
              1e-9);
  const VEdge zero = handle.package->make_zero_state();
  EXPECT_NEAR(handle.package->fidelity(zero, handle.state), 0.5, 1e-9);
  EXPECT_LE(handle.package->stats().inner_visits - before,
            static_cast<std::size_t>(8 * n));
}

// --- stats plumbing ----------------------------------------------------------

TEST(DDMemory, RunResultSurfacesMemoryTelemetry) {
  ScopedGcThreshold env("1");
  QuantumCircuit qc = ghz_circuit(8);
  qc.measure_all();
  DDSimulator sim(3);
  const DDRunResult r = sim.run(qc, 32);
  EXPECT_GT(r.gc_runs, 0u);
  EXPECT_GT(r.freed_nodes, 0u);
  EXPECT_GT(r.peak_live_nodes, 0u);
  EXPECT_GE(r.allocated_nodes, r.peak_live_nodes);
  EXPECT_GT(r.final_nodes, 0u);
}

TEST(DDMemory, ClearResetsPoolsAndMakesHandlesInert) {
  ScopedGcThreshold env("0");
  Package pkg(3);
  Package::VRef pin = pkg.hold(pkg.make_basis_state(0b111));
  pkg.clear();
  EXPECT_EQ(pkg.live_nodes(), 0u);
  EXPECT_EQ(pkg.stats().vector_nodes_allocated, 0u);
  // The stale handle must not touch recycled storage when destroyed; build
  // new state to prove the package is fully usable after clear().
  const VEdge fresh = pkg.make_zero_state();
  EXPECT_NEAR(std::abs(pkg.amplitude(fresh, 0) - cplx(1, 0)), 0, 1e-12);
}

}  // namespace
}  // namespace qtc::dd
