#include "aqua/trotter.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulator.hpp"

namespace qtc::aqua {
namespace {

// --- eigensystem / matrix exponential utilities -----------------------------

TEST(EigenSystem, DiagonalizesPauliY) {
  const Matrix y = op_matrix(OpKind::Y);
  const EigenSystem es = hermitian_eigensystem(y);
  EXPECT_NEAR(es.values[0], -1, 1e-10);
  EXPECT_NEAR(es.values[1], 1, 1e-10);
  EXPECT_TRUE(es.vectors.is_unitary(1e-9));
  // Reconstruct: V diag V^dag == Y.
  Matrix diag(2, 2);
  diag(0, 0) = es.values[0];
  diag(1, 1) = es.values[1];
  EXPECT_TRUE((es.vectors * diag * es.vectors.dagger()).approx_equal(y, 1e-9));
}

TEST(EigenSystem, ReconstructsRandomHermitian) {
  Rng rng(3);
  Matrix m(8, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    m(i, i) = rng.uniform(-2, 2);
    for (std::size_t j = i + 1; j < 8; ++j) {
      m(i, j) = cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
      m(j, i) = std::conj(m(i, j));
    }
  }
  const EigenSystem es = hermitian_eigensystem(m, 128);
  Matrix diag(8, 8);
  for (std::size_t i = 0; i < 8; ++i) diag(i, i) = es.values[i];
  EXPECT_LT(
      (es.vectors * diag * es.vectors.dagger()).max_abs_diff(m), 1e-8);
  for (std::size_t i = 0; i + 1 < 8; ++i)
    EXPECT_LE(es.values[i], es.values[i + 1]);
}

TEST(ExpI, ZeroScaleIsIdentity) {
  const Matrix m = op_matrix(OpKind::X);
  EXPECT_TRUE(hermitian_exp_i(m, 0).approx_equal(Matrix::identity(2), 1e-10));
}

TEST(ExpI, PauliZGivesPhases) {
  const Matrix u = hermitian_exp_i(op_matrix(OpKind::Z), 0.7);
  EXPECT_NEAR(std::abs(u(0, 0) - std::exp(cplx(0, 0.7))), 0, 1e-10);
  EXPECT_NEAR(std::abs(u(1, 1) - std::exp(cplx(0, -0.7))), 0, 1e-10);
  EXPECT_TRUE(u.is_unitary(1e-9));
}

TEST(ExpI, MatchesRotationGates) {
  // exp(-i theta/2 X) == RX(theta).
  const double theta = 1.1;
  const Matrix u = hermitian_exp_i(op_matrix(OpKind::X), -theta / 2);
  EXPECT_TRUE(u.approx_equal(op_matrix(OpKind::RX, {theta}), 1e-9));
}

// --- single-string evolutions --------------------------------------------------

class PauliEvolutionTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PauliEvolutionTest, MatchesExactExponentialExactly) {
  const std::string paulis = GetParam();
  const double theta = 0.37;
  QuantumCircuit qc(static_cast<int>(paulis.size()));
  append_pauli_evolution(qc, paulis, theta);
  const Matrix circuit_u = sim::UnitarySimulator().unitary(qc);
  const Matrix exact = hermitian_exp_i(
      PauliOp::term(static_cast<int>(paulis.size()), paulis).to_matrix(),
      -theta);
  // Exact including global phase: the construction uses true RZ.
  EXPECT_LT(circuit_u.max_abs_diff(exact), 1e-9) << paulis;
}

INSTANTIATE_TEST_SUITE_P(Strings, PauliEvolutionTest,
                         ::testing::Values("Z", "X", "Y", "ZZ", "XX", "YY",
                                           "XY", "ZIZ", "XYZ", "IZI"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(PauliEvolution, IdentityStringAddsNothing) {
  QuantumCircuit qc(2);
  append_pauli_evolution(qc, "II", 0.5);
  EXPECT_EQ(qc.size(), 0u);
}

TEST(PauliEvolution, BadInputThrows) {
  QuantumCircuit qc(2);
  EXPECT_THROW(append_pauli_evolution(qc, "Z", 0.1), std::invalid_argument);
  EXPECT_THROW(append_pauli_evolution(qc, "QZ", 0.1), std::invalid_argument);
}

// --- model builders -------------------------------------------------------------

TEST(Models, HeisenbergChainStructure) {
  const PauliOp h = heisenberg_chain(3, 1.0, 0.5);
  // 2 bonds x 3 axes + 3 fields = 9 terms.
  EXPECT_EQ(h.num_terms(), 9u);
  EXPECT_TRUE(h.is_hermitian());
}

TEST(Models, TfimGroundEnergyAtKnownPoints) {
  // g = 0: classical Ising, ground energy -J (n-1); ferromagnetic states.
  const PauliOp classical = tfim_chain(3, 1.0, 0.0);
  EXPECT_NEAR(classical.ground_energy(), -2.0, 1e-8);
  // J = 0: free spins in a field, ground energy -g n.
  const PauliOp free = tfim_chain(3, 0.0, 1.0);
  EXPECT_NEAR(free.ground_energy(), -3.0, 1e-8);
}

// --- Trotter convergence ---------------------------------------------------------

double trotter_error(const PauliOp& h, double t, int steps, int order) {
  const QuantumCircuit qc = order == 1 ? trotter_circuit(h, t, steps)
                                       : trotter_circuit_2nd(h, t, steps);
  const Matrix approx = sim::UnitarySimulator().unitary(qc);
  const Matrix exact = hermitian_exp_i(h.to_matrix(), -t);
  return approx.max_abs_diff(exact);
}

TEST(Trotter, FirstOrderErrorShrinksLinearly) {
  const PauliOp h = heisenberg_chain(3, 1.0, 0.3);
  const double e4 = trotter_error(h, 1.0, 4, 1);
  const double e16 = trotter_error(h, 1.0, 16, 1);
  EXPECT_LT(e16, e4 / 2.5);  // ~1/4 expected for O(dt) error
  EXPECT_LT(e16, 0.15);
}

TEST(Trotter, SecondOrderBeatsFirstOrder) {
  const PauliOp h = heisenberg_chain(3, 1.0, 0.3);
  const double first = trotter_error(h, 1.0, 8, 1);
  const double second = trotter_error(h, 1.0, 8, 2);
  EXPECT_LT(second, first);
}

TEST(Trotter, CommutingHamiltonianIsExactInOneStep) {
  // All-Z Hamiltonian: terms commute, a single Trotter step is exact.
  PauliOp h = PauliOp::term(2, "ZI", {0.4, 0}) +
              PauliOp::term(2, "IZ", {-0.7, 0}) +
              PauliOp::term(2, "ZZ", {0.2, 0});
  EXPECT_LT(trotter_error(h, 2.0, 1, 1), 1e-9);
}

TEST(Trotter, EnergyIsConservedUnderEvolution) {
  const PauliOp h = tfim_chain(3, 1.0, 0.7);
  sim::StatevectorSimulator sim;
  // Start in |+00>: a state with nonzero energy spread.
  QuantumCircuit prep(3);
  prep.h(0);
  const auto initial = sim.statevector(prep).amplitudes();
  const double e0 = h.expectation(initial);
  QuantumCircuit evolved(3);
  evolved.h(0);
  evolved.compose(trotter_circuit_2nd(h, 0.8, 24));
  const auto final_state = sim.statevector(evolved).amplitudes();
  EXPECT_NEAR(h.expectation(final_state), e0, 5e-3);
}

TEST(Trotter, MagnetizationDynamicsMatchExact) {
  // <Z_0>(t) under TFIM, Trotter vs exact exponential.
  const PauliOp h = tfim_chain(2, 1.0, 1.0);
  const Matrix hm = h.to_matrix();
  sim::StatevectorSimulator sim;
  for (double t : {0.3, 0.9}) {
    QuantumCircuit qc(2);
    qc.compose(trotter_circuit_2nd(h, t, 32));
    const auto approx_state = sim.statevector(qc).amplitudes();
    const Matrix exact_u = hermitian_exp_i(hm, -t);
    std::vector<cplx> zero(4, cplx{0, 0});
    zero[0] = 1;
    const auto exact_state = exact_u * zero;
    const PauliOp z0 = PauliOp::term(2, "IZ");
    EXPECT_NEAR(z0.expectation(approx_state), z0.expectation(exact_state),
                5e-3)
        << "t = " << t;
  }
}

TEST(Trotter, Validation) {
  const PauliOp h = tfim_chain(2, 1, 1);
  EXPECT_THROW(trotter_circuit(h, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(trotter_circuit(PauliOp::term(2, "XX", {0, 1}), 1.0, 2),
               std::invalid_argument);
  EXPECT_THROW(heisenberg_chain(1, 1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace qtc::aqua
