#include "aqua/algorithms.hpp"
#include "aqua/ansatz.hpp"
#include "aqua/h2.hpp"
#include "aqua/maxcut.hpp"
#include "aqua/optimizer.hpp"
#include "aqua/vqe.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "sim/simulator.hpp"

namespace qtc::aqua {
namespace {

// --- optimizers -------------------------------------------------------------

double rosenbrock(const std::vector<double>& x) {
  return 100 * std::pow(x[1] - x[0] * x[0], 2) + std::pow(1 - x[0], 2);
}

double quadratic(const std::vector<double>& x) {
  double s = 0;
  for (std::size_t i = 0; i < x.size(); ++i)
    s += (x[i] - 0.5 * (i + 1)) * (x[i] - 0.5 * (i + 1));
  return s;
}

TEST(Optimizer, NelderMeadSolvesRosenbrock) {
  const auto result = NelderMead(8000).minimize(rosenbrock, {-1.2, 1.0});
  EXPECT_NEAR(result.parameters[0], 1.0, 1e-3);
  EXPECT_NEAR(result.parameters[1], 1.0, 1e-3);
  EXPECT_LT(result.value, 1e-6);
}

TEST(Optimizer, NelderMeadSolvesQuadratic) {
  const auto result =
      NelderMead().minimize(quadratic, {0, 0, 0});
  EXPECT_LT(result.value, 1e-8);
  EXPECT_NEAR(result.parameters[2], 1.5, 1e-3);
}

TEST(Optimizer, SpsaApproachesQuadraticMinimum) {
  const auto result = Spsa(800, 0.4, 0.2, 9).minimize(quadratic, {2, -1, 0});
  EXPECT_LT(result.value, 0.05);
}

TEST(Optimizer, GradientDescentOnQuadratic) {
  const auto result = GradientDescent(300, 0.3).minimize(quadratic, {0, 0, 0});
  EXPECT_LT(result.value, 1e-8);
}

TEST(Optimizer, EmptyParametersThrow) {
  EXPECT_THROW(NelderMead().minimize(quadratic, {}), std::invalid_argument);
  EXPECT_THROW(Spsa().minimize(quadratic, {}), std::invalid_argument);
}

// --- ansaetze ---------------------------------------------------------------

TEST(Ansatz, RyLinearShape) {
  const Ansatz a = ry_linear(3, 2);
  EXPECT_EQ(a.num_parameters, 9);
  const QuantumCircuit qc = a.build(std::vector<double>(9, 0.1));
  EXPECT_EQ(qc.count(OpKind::RY), 9);
  EXPECT_EQ(qc.count(OpKind::CX), 4);  // 2 entangling layers x 2 pairs
  EXPECT_THROW(a.build({0.1}), std::invalid_argument);
}

TEST(Ansatz, EfficientSu2Shape) {
  const Ansatz a = efficient_su2(2, 1);
  EXPECT_EQ(a.num_parameters, 8);
  const QuantumCircuit qc = a.build(std::vector<double>(8, 0.0));
  EXPECT_EQ(qc.count(OpKind::RZ), 4);
}

// --- H2 electronic structure ---------------------------------------------------

TEST(H2, BoysFunctionLimits) {
  EXPECT_NEAR(boys_f0(0), 1.0, 1e-9);
  EXPECT_NEAR(boys_f0(1e-14), 1.0, 1e-9);
  // Large t: F0 -> 0.5 sqrt(pi/t).
  EXPECT_NEAR(boys_f0(100.0), 0.5 * std::sqrt(PI / 100.0), 1e-9);
}

TEST(H2, OverlapMatchesSzaboOstlund) {
  // Szabo & Ostlund give S12 = 0.6593 for STO-3G H2 at R = 1.4 bohr.
  const auto ints = h2_integrals(1.4 * 0.52917721092);
  EXPECT_NEAR(ints.overlap12, 0.6593, 2e-3);
}

TEST(H2, CoreHamiltonianIsSymmetryDiagonal) {
  const auto ints = h2_integrals(0.74);
  EXPECT_NEAR(ints.h_mo[0][1], 0.0, 1e-10);
  EXPECT_NEAR(ints.h_mo[1][0], 0.0, 1e-10);
  EXPECT_LT(ints.h_mo[0][0], ints.h_mo[1][1]);  // bonding below antibonding
}

TEST(H2, HamiltonianIsHermitianAndFourQubits) {
  const H2Problem problem = h2_problem(0.735);
  EXPECT_EQ(problem.hamiltonian.num_qubits(), 4);
  EXPECT_TRUE(problem.hamiltonian.is_hermitian(1e-8));
  EXPECT_GT(problem.hamiltonian.num_terms(), 5u);
}

TEST(H2, FciEnergyNearEquilibriumMatchesLiterature) {
  // Full CI in STO-3G at the equilibrium bond length ~0.735 A gives a total
  // energy of about -1.137 Hartree.
  const H2Problem problem = h2_problem(0.735);
  const double fci = problem.fci_energy();
  EXPECT_GT(fci, -1.16);
  EXPECT_LT(fci, -1.12);
}

TEST(H2, DissociationCurveHasMinimumNearEquilibrium) {
  const double e_short = h2_problem(0.4).fci_energy();
  const double e_eq = h2_problem(0.735).fci_energy();
  const double e_long = h2_problem(2.5).fci_energy();
  EXPECT_LT(e_eq, e_short);
  EXPECT_LT(e_eq, e_long);
  // Dissociation limit: two hydrogen atoms, ~-0.93 Ha in this basis at 2.5 A.
  EXPECT_GT(e_long, -1.01);
}

TEST(H2, InvalidBondLengthThrows) {
  EXPECT_THROW(h2_problem(0.0), std::invalid_argument);
  EXPECT_THROW(h2_problem(-1.0), std::invalid_argument);
}

// --- VQE -----------------------------------------------------------------------

TEST(Vqe, FindsGroundStateOfSingleQubitHamiltonian) {
  // H = X + Z, ground energy -sqrt(2).
  const PauliOp h = PauliOp::term(1, "X") + PauliOp::term(1, "Z");
  VqeOptions options;
  options.seed = 7;
  const VqeResult result = vqe(h, ry_linear(1, 0), NelderMead(), options);
  EXPECT_NEAR(result.energy, -std::sqrt(2.0), 1e-4);
}

TEST(Vqe, SolvesH2AtEquilibrium) {
  const H2Problem problem = h2_problem(0.735);
  VqeOptions options;
  options.seed = 13;
  options.restarts = 2;
  const VqeResult result =
      vqe(problem.hamiltonian, ry_linear(4, 2), NelderMead(6000), options);
  const double exact = problem.hamiltonian.ground_energy();
  EXPECT_NEAR(result.energy, exact, 2e-3);
}

TEST(Vqe, ShotBasedExpectationApproachesExact) {
  const PauliOp h = PauliOp::term(2, "ZZ") + PauliOp::term(2, "XI", {0.5, 0});
  QuantumCircuit prep(2);
  prep.h(0).cx(0, 1);
  const double exact = estimate_expectation(prep, h, 0);
  const double sampled = estimate_expectation(prep, h, 20000, {}, 5);
  EXPECT_NEAR(sampled, exact, 0.05);
}

TEST(Vqe, RejectsMismatchedSizes) {
  const PauliOp h = PauliOp::term(2, "ZZ");
  EXPECT_THROW(vqe(h, ry_linear(1, 0), NelderMead()), std::invalid_argument);
}

TEST(Vqe, RejectsNonHermitianHamiltonian) {
  const PauliOp h = PauliOp::term(1, "X", {0, 1});
  QuantumCircuit prep(1);
  EXPECT_THROW(estimate_expectation(prep, h), std::invalid_argument);
}

// --- Max-Cut ---------------------------------------------------------------------

Graph square_graph() {
  // 4-cycle: max cut = 4.
  return Graph{4, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 0, 1}}};
}

TEST(MaxCut, CutValueCountsCrossingEdges) {
  const Graph g = square_graph();
  EXPECT_EQ(cut_value(g, 0b0101), 4);
  EXPECT_EQ(cut_value(g, 0b0011), 2);
  EXPECT_EQ(cut_value(g, 0b0000), 0);
}

TEST(MaxCut, BruteForceOnSquare) {
  EXPECT_EQ(max_cut_brute_force(square_graph()), 4);
}

TEST(MaxCut, HamiltonianGroundEnergyEqualsMinusMaxCut) {
  const Graph g = square_graph();
  const PauliOp h = maxcut_hamiltonian(g);
  EXPECT_NEAR(h.ground_energy(), -max_cut_brute_force(g), 1e-8);
}

TEST(MaxCut, QaoaFindsTheOptimalCut) {
  const Graph g = square_graph();
  const PauliOp h = maxcut_hamiltonian(g);
  VqeOptions options;
  options.seed = 23;
  options.restarts = 3;
  const VqeResult result = vqe(h, qaoa_ansatz(g, 2), NelderMead(), options);
  // Read the cut from the optimized distribution.
  const QuantumCircuit qc = qaoa_ansatz(g, 2).build(result.parameters);
  sim::StatevectorSimulator sim;
  const auto probs = sim.statevector(qc).probabilities();
  const std::uint64_t assignment = best_assignment(g, probs);
  EXPECT_EQ(cut_value(g, assignment), max_cut_brute_force(g));
}

TEST(MaxCut, BadEdgesThrow) {
  EXPECT_THROW(maxcut_hamiltonian(Graph{2, {{0, 5, 1}}}),
               std::invalid_argument);
  EXPECT_THROW(maxcut_hamiltonian(Graph{2, {{1, 1, 1}}}),
               std::invalid_argument);
}

// --- algorithm library -------------------------------------------------------------

TEST(Algorithms, GhzAmplitudes) {
  sim::StatevectorSimulator sim;
  const auto sv = sim.statevector(ghz(4).unitary_part());
  EXPECT_NEAR(std::abs(sv.amplitude(0)), SQRT1_2, 1e-10);
  EXPECT_NEAR(std::abs(sv.amplitude(15)), SQRT1_2, 1e-10);
}

TEST(Algorithms, WStateIsUniformOverWeightOne) {
  sim::StatevectorSimulator sim;
  const int n = 4;
  const auto sv = sim.statevector(w_state(n).unitary_part());
  for (std::uint64_t i = 0; i < (1u << n); ++i) {
    const int weight = __builtin_popcountll(i);
    if (weight == 1)
      EXPECT_NEAR(std::abs(sv.amplitude(i)), 1.0 / std::sqrt(n), 1e-9) << i;
    else
      EXPECT_NEAR(std::abs(sv.amplitude(i)), 0.0, 1e-9) << i;
  }
}

TEST(Algorithms, QftMatchesDiscreteFourierMatrix) {
  const int n = 3;
  const Matrix u = sim::UnitarySimulator().unitary(qft(n));
  const std::size_t dim = 1 << n;
  const cplx omega = std::exp(cplx(0, 2 * PI / dim));
  for (std::size_t r = 0; r < dim; ++r)
    for (std::size_t c = 0; c < dim; ++c)
      EXPECT_LT(std::abs(u(r, c) - std::pow(omega, r * c) /
                                        std::sqrt(double(dim))),
                1e-9)
          << r << "," << c;
}

TEST(Algorithms, IqftInvertsQft) {
  QuantumCircuit combined(3);
  combined.compose(qft(3));
  combined.compose(iqft(3));
  const Matrix u = sim::UnitarySimulator().unitary(combined);
  EXPECT_TRUE(u.equal_up_to_phase(Matrix::identity(8), 1e-9));
}

TEST(Algorithms, McxActsAsMultiControlledX) {
  for (int controls = 1; controls <= 4; ++controls) {
    QuantumCircuit qc(controls + 1);
    std::vector<Qubit> cs;
    for (int i = 0; i < controls; ++i) cs.push_back(i);
    mcx(qc, cs, controls);
    const Matrix u = sim::UnitarySimulator().unitary(qc);
    const std::size_t dim = u.rows();
    // Only |1..1 0> <-> |1..1 1> swap; everything else identity.
    const std::size_t all_controls = (std::size_t{1} << controls) - 1;
    for (std::size_t i = 0; i < dim; ++i) {
      const std::size_t expected_col =
          ((i & all_controls) == all_controls)
              ? (i ^ (std::size_t{1} << controls))
              : i;
      EXPECT_NEAR(std::abs(u(expected_col, i)), 1.0, 1e-8)
          << controls << " controls, col " << i;
    }
  }
}

TEST(Algorithms, GroverFindsMarkedElement) {
  sim::StatevectorSimulator sim(31);
  for (const std::string marked : {"101", "0110"}) {
    const auto result = sim.run(grover(marked), 2000);
    EXPECT_GT(result.counts.probability(marked), 0.6) << marked;
  }
}

TEST(Algorithms, BernsteinVaziraniIsDeterministic) {
  sim::StatevectorSimulator sim;
  for (const std::string secret : {"1011", "0001", "111"}) {
    const auto result = sim.run(bernstein_vazirani(secret), 200);
    EXPECT_EQ(result.counts.count(secret), 200) << secret;
  }
}

TEST(Algorithms, DeutschJozsaConstantGivesZeros) {
  sim::StatevectorSimulator sim;
  const auto constant = sim.run(deutsch_jozsa("000"), 100);
  EXPECT_EQ(constant.counts.count("000"), 100);
  const auto balanced = sim.run(deutsch_jozsa("010"), 100);
  EXPECT_EQ(balanced.counts.count("000"), 0);
}

TEST(Algorithms, QpeRecoversExactPhase) {
  sim::StatevectorSimulator sim;
  // phase = 5/16 with 4 counting qubits is exactly representable.
  const auto result = sim.run(qpe(5.0 / 16.0, 4), 500);
  EXPECT_EQ(result.counts.count("0101"), 500);
}

TEST(Algorithms, QpeApproximatesIrrationalPhase) {
  sim::StatevectorSimulator sim(17);
  const double phase = 0.3;
  const int precision = 5;
  const auto result = sim.run(qpe(phase, precision), 4000);
  // The most likely outcome should be round(phase * 2^precision).
  const int expected = static_cast<int>(std::lround(phase * 32)) % 32;
  EXPECT_EQ(result.counts.most_frequent(),
            sim::format_bits(expected, precision));
}

TEST(Algorithms, TeleportationDeliversTheState) {
  sim::StatevectorSimulator sim(41);
  const double theta = 0.9;
  const auto result = sim.run(teleportation(theta), 4000);
  const double p1 = std::pow(std::sin(theta / 2), 2);
  int ones = 0;
  for (const auto& [bits, c] : result.counts.histogram)
    if (bits[0] == '1') ones += c;  // clbit 2 ("out") is leftmost
  EXPECT_NEAR(ones / 4000.0, p1, 0.03);
}

TEST(Algorithms, CuccaroAdderAddsAllInputs) {
  const int bits = 3;
  const QuantumCircuit adder = cuccaro_adder(bits).unitary_part();
  sim::StatevectorSimulator sim;
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; b += 3) {
      QuantumCircuit qc(2 * bits + 1);
      for (int i = 0; i < bits; ++i) {
        if ((a >> i) & 1) qc.x(1 + i);
        if ((b >> i) & 1) qc.x(1 + bits + i);
      }
      qc.compose(adder);
      const auto sv = sim.statevector(qc);
      // Expected: carry 0, a unchanged, b = a + b mod 8.
      std::uint64_t expected = 0;
      for (int i = 0; i < bits; ++i) {
        if ((a >> i) & 1) expected |= std::uint64_t{1} << (1 + i);
        if ((((a + b) % 8) >> i) & 1)
          expected |= std::uint64_t{1} << (1 + bits + i);
      }
      EXPECT_NEAR(std::abs(sv.amplitude(expected)), 1.0, 1e-9)
          << a << "+" << b;
    }
  }
}


TEST(Shor, ControlledMultMod15Permutation) {
  sim::StatevectorSimulator sim;
  for (int a : {2, 4, 7, 8, 11, 13}) {
    for (int x = 1; x < 15; ++x) {
      QuantumCircuit qc(5);
      qc.x(0);  // control asserted
      for (int b = 0; b < 4; ++b)
        if ((x >> b) & 1) qc.x(1 + b);
      controlled_mult_mod15(qc, a, 0, {1, 2, 3, 4});
      const auto sv = sim.statevector(qc);
      const std::uint64_t expect = 1 | (std::uint64_t((a * x) % 15) << 1);
      EXPECT_NEAR(std::abs(sv.amplitude(expect)), 1.0, 1e-9)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(Shor, ControlOffMeansIdentity) {
  sim::StatevectorSimulator sim;
  QuantumCircuit qc(5);
  qc.x(2);  // work = 2, control clear
  controlled_mult_mod15(qc, 7, 0, {1, 2, 3, 4});
  const auto sv = sim.statevector(qc);
  EXPECT_NEAR(std::abs(sv.amplitude(0b00100)), 1.0, 1e-9);
}

TEST(Shor, OrderFindingPeaksAtMultiplesOfInverseOrder) {
  // a = 7 has order 4 mod 15: counting register peaks at k * 2^p / 4.
  const int precision = 4;
  sim::StatevectorSimulator sim(3);
  const auto result = sim.run(shor_order_finding(7, precision), 8000);
  const int quarter = 1 << (precision - 2);
  double on_peaks = 0;
  for (int k = 0; k < 4; ++k)
    on_peaks +=
        result.counts.probability(sim::format_bits(k * quarter, precision));
  EXPECT_GT(on_peaks, 0.95);
  // Every peak is roughly uniform.
  EXPECT_NEAR(result.counts.probability(sim::format_bits(quarter, precision)),
              0.25, 0.05);
}

TEST(Shor, OrderFindingForOrderTwoElement) {
  // a = 4 has order 2 mod 15 (16 = 1): peaks at 0 and 2^(p-1).
  const int precision = 3;
  sim::StatevectorSimulator sim(5);
  const auto result = sim.run(shor_order_finding(4, precision), 4000);
  EXPECT_NEAR(result.counts.probability("000"), 0.5, 0.05);
  EXPECT_NEAR(result.counts.probability("100"), 0.5, 0.05);
}

TEST(Shor, OrderFromPhaseContinuedFractions) {
  // phase = 3/4 measured with 4 bits: value 12 -> order 4.
  EXPECT_EQ(order_from_phase(12, 4), 4);
  EXPECT_EQ(order_from_phase(4, 4), 4);   // 1/4
  EXPECT_EQ(order_from_phase(8, 4), 2);   // 1/2
  EXPECT_EQ(order_from_phase(0, 4), 1);
  // Inexact phase: 0.30078125 ~ 77/256 -> nearest small denominator 3.
  EXPECT_EQ(order_from_phase(77, 8, 8), 3);
}

TEST(Shor, EndToEndRecoversOrderOfSeven) {
  sim::StatevectorSimulator sim(7);
  const int precision = 4;
  const auto result = sim.run(shor_order_finding(7, precision), 64);
  // Combine candidate orders over shots by lcm; must reach exactly 4.
  long long combined = 1;
  for (const auto& [bits, count] : result.counts.histogram) {
    std::uint64_t value = 0;
    for (int b = 0; b < precision; ++b)
      if (bits[precision - 1 - b] == '1') value |= 1ull << b;
    const int r = order_from_phase(value, precision);
    combined = std::lcm(combined, static_cast<long long>(r));
  }
  EXPECT_EQ(combined, 4);
}

TEST(Shor, ValidationErrors) {
  QuantumCircuit qc(5);
  EXPECT_THROW(controlled_mult_mod15(qc, 3, 0, {1, 2, 3, 4}),
               std::invalid_argument);
  EXPECT_THROW(controlled_mult_mod15(qc, 7, 0, {1, 2}),
               std::invalid_argument);
  EXPECT_THROW(shor_order_finding(7, 1), std::invalid_argument);
}

TEST(Algorithms, ValidationErrors) {
  EXPECT_THROW(ghz(0), std::invalid_argument);
  EXPECT_THROW(grover("1"), std::invalid_argument);
  EXPECT_THROW(grover("10a"), std::invalid_argument);
  EXPECT_THROW(qpe(0.5, 0), std::invalid_argument);
  EXPECT_THROW(cuccaro_adder(0), std::invalid_argument);
}

}  // namespace
}  // namespace qtc::aqua
