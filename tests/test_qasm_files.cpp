// File-based QASM loading: the shipped .qasm assets in data/ must parse,
// execute, and round-trip. QTC_DATA_DIR is injected by CMake.

#include <gtest/gtest.h>

#include "qasm/parser.hpp"
#include "sim/simulator.hpp"

namespace qtc {
namespace {

std::string data_path(const std::string& name) {
  return std::string(QTC_DATA_DIR) + "/" + name;
}

TEST(QasmFiles, MissingFileThrows) {
  EXPECT_THROW(qasm::parse_file(data_path("nonexistent.qasm")),
               std::runtime_error);
}

TEST(QasmFiles, Fig1Loads) {
  const QuantumCircuit qc = qasm::parse_file(data_path("fig1.qasm"));
  EXPECT_EQ(qc.num_qubits(), 4);
  EXPECT_EQ(qc.size(), 8u);
  EXPECT_EQ(qc.count(OpKind::CX), 5);
}

TEST(QasmFiles, BellRunsCorrelated) {
  const QuantumCircuit qc = qasm::parse_file(data_path("bell.qasm"));
  sim::StatevectorSimulator sim(7);
  const auto result = sim.run(qc, 2000);
  EXPECT_EQ(result.counts.count("01") + result.counts.count("10"), 0);
  EXPECT_NEAR(result.counts.probability("11"), 0.5, 0.05);
}

TEST(QasmFiles, TeleportDeliversTheState) {
  const QuantumCircuit qc = qasm::parse_file(data_path("teleport.qasm"));
  EXPECT_TRUE(qc.has_conditionals());
  sim::StatevectorSimulator sim(11);
  const auto result = sim.run(qc, 4000);
  const double expected_p1 = std::pow(std::sin(0.45), 2);
  int ones = 0;
  for (const auto& [bits, c] : result.counts.histogram)
    if (bits[0] == '1') ones += c;  // leftmost clbit = "out"
  EXPECT_NEAR(ones / 4000.0, expected_p1, 0.03);
}

TEST(QasmFiles, CustomGatesExpandToCuccaroAdder) {
  // The majority/unmaj macros implement 1 + 1 = 2 on the b register, then a
  // Bell pair entangles two of the a qubits.
  const QuantumCircuit qc = qasm::parse_file(data_path("custom_gates.qasm"));
  sim::StatevectorSimulator sim(13);
  const auto result = sim.run(qc, 500);
  EXPECT_EQ(result.counts.count("10"), 500);  // b reads 2
}

TEST(QasmFiles, AllAssetsRoundTrip) {
  for (const char* name :
       {"fig1.qasm", "bell.qasm", "teleport.qasm", "custom_gates.qasm"}) {
    const QuantumCircuit qc = qasm::parse_file(data_path(name));
    const QuantumCircuit back = qasm::parse(qasm::emit(qc));
    ASSERT_EQ(back.size(), qc.size()) << name;
    for (std::size_t i = 0; i < qc.size(); ++i) {
      EXPECT_EQ(back.ops()[i].kind, qc.ops()[i].kind) << name;
      EXPECT_EQ(back.ops()[i].qubits, qc.ops()[i].qubits) << name;
    }
  }
}

}  // namespace
}  // namespace qtc
