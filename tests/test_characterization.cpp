// Tests for the extended characterization workflows: T1/T2 relaxation and
// process tomography.

#include <gtest/gtest.h>

#include <cmath>

#include "core/gates.hpp"
#include "ignis/process_tomography.hpp"
#include "ignis/relaxation.hpp"

namespace qtc::ignis {
namespace {

// --- T1 / T2 -----------------------------------------------------------------

TEST(Relaxation, T1RecoversInjectedTime) {
  const double t1 = 20.0, t2 = 15.0;
  const auto model = idle_relaxation_model(t1, t2);
  RelaxationConfig config;
  config.delays = {0, 2, 5, 10, 20, 40};
  config.shots = 4000;
  const RelaxationResult result = measure_t1(config, model);
  EXPECT_NEAR(result.fitted_time, t1, t1 * 0.15);
  // Signal decays monotonically from ~1.
  EXPECT_NEAR(result.points.front().signal, 1.0, 0.02);
  EXPECT_LT(result.points.back().signal, 0.25);
}

TEST(Relaxation, T2RamseyRecoversInjectedTime) {
  const double t1 = 50.0, t2 = 12.0;
  const auto model = idle_relaxation_model(t1, t2);
  RelaxationConfig config;
  config.delays = {0, 1, 2, 4, 8, 16};
  config.shots = 8000;
  const RelaxationResult result = measure_t2_ramsey(config, model);
  EXPECT_NEAR(result.fitted_time, t2, t2 * 0.2);
}

TEST(Relaxation, PureDephasingLeavesT1Infinite) {
  // T2-only noise must not decay the T1 signal at all.
  noise::NoiseModel model;
  model.add_all_qubit_error(noise::phase_damping(0.2), OpKind::I);
  RelaxationConfig config;
  config.delays = {0, 4, 16};
  config.shots = 1500;
  const RelaxationResult result = measure_t1(config, model);
  for (const auto& p : result.points) EXPECT_NEAR(p.signal, 1.0, 0.02);
}

TEST(Relaxation, T2NeverExceedsTwiceT1InModel) {
  EXPECT_THROW(idle_relaxation_model(10.0, 25.0), std::invalid_argument);
}

TEST(Relaxation, ConfigValidation) {
  RelaxationConfig config;
  config.delays = {-1};
  EXPECT_THROW(measure_t1(config, noise::NoiseModel{}),
               std::invalid_argument);
  config.delays = {1};
  config.shots = 0;
  EXPECT_THROW(measure_t1(config, noise::NoiseModel{}),
               std::invalid_argument);
}

// --- process tomography -----------------------------------------------------

noise::KrausChannel unitary_channel(OpKind kind) {
  return noise::KrausChannel{{op_matrix(kind)}, 1};
}

TEST(ProcessTomography, ChoiOfIdentityIsBellProjector) {
  const Matrix j = choi_of_channel(noise::identity_channel());
  EXPECT_NEAR(j(0, 0).real(), 1.0, 1e-12);
  EXPECT_NEAR(j(0, 3).real(), 1.0, 1e-12);
  EXPECT_NEAR(j(3, 0).real(), 1.0, 1e-12);
  EXPECT_NEAR(j(3, 3).real(), 1.0, 1e-12);
  EXPECT_NEAR(j(1, 1).real(), 0.0, 1e-12);
  EXPECT_NEAR(j.trace().real(), 2.0, 1e-12);
}

TEST(ProcessTomography, ChoiOfDepolarizingHasShrunkOffDiagonals) {
  const double p = 0.3;
  const Matrix j = choi_of_channel(noise::depolarizing(p));
  // Lambda(|0><1|) = (1 - 4p/3) |0><1|.
  EXPECT_NEAR(j(0, 3).real(), 1 - 4 * p / 3, 1e-12);
  EXPECT_NEAR(j.trace().real(), 2.0, 1e-12);
}

TEST(ProcessTomography, IdentityGateReconstruction) {
  QuantumCircuit gate(1);
  gate.id(0);
  const auto result = process_tomography(gate, noise::NoiseModel{}, 8192, 3);
  EXPECT_GT(result.process_fidelity(noise::identity_channel()), 0.97);
  EXPECT_LT(result.process_fidelity(unitary_channel(OpKind::X)), 0.1);
  EXPECT_NEAR(result.choi.trace().real(), 2.0, 0.05);
  EXPECT_TRUE(result.choi.is_hermitian(0.05));
}

TEST(ProcessTomography, HadamardReconstruction) {
  QuantumCircuit gate(1);
  gate.h(0);
  const auto result = process_tomography(gate, noise::NoiseModel{}, 8192, 7);
  EXPECT_GT(result.process_fidelity(unitary_channel(OpKind::H)), 0.97);
  EXPECT_LT(result.process_fidelity(noise::identity_channel()), 0.6);
}

TEST(ProcessTomography, RecoversEffectiveAmplitudeDamping) {
  // The "gate" is an idle slot that the noise model damps.
  const double gamma = 0.35;
  noise::NoiseModel model;
  model.add_all_qubit_error(noise::amplitude_damping(gamma), OpKind::I);
  QuantumCircuit gate(1);
  gate.id(0);
  const auto result = process_tomography(gate, model, 16384, 11);
  const Matrix expected =
      choi_of_channel(noise::amplitude_damping(gamma));
  EXPECT_LT(result.choi.max_abs_diff(expected), 0.06);
}

TEST(ProcessTomography, NoisyGateFidelityDropsWithNoise) {
  QuantumCircuit gate(1);
  gate.h(0);
  noise::NoiseModel noisy;
  noisy.add_all_qubit_error(noise::depolarizing(0.1), OpKind::H);
  const auto clean = process_tomography(gate, noise::NoiseModel{}, 4096, 5);
  const auto corrupted = process_tomography(gate, noisy, 4096, 5);
  const auto h_ref = unitary_channel(OpKind::H);
  EXPECT_LT(corrupted.process_fidelity(h_ref),
            clean.process_fidelity(h_ref) - 0.03);
}

TEST(ProcessTomography, RejectsMultiQubitGate) {
  QuantumCircuit gate(2);
  gate.cx(0, 1);
  EXPECT_THROW(process_tomography(gate, noise::NoiseModel{}),
               std::invalid_argument);
  EXPECT_THROW(choi_of_channel(noise::depolarizing2(0.1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace qtc::ignis
