#include "core/drawer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/circuit.hpp"

namespace qtc {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(Drawer, EmptyCircuitMessage) {
  QuantumCircuit qc;
  EXPECT_NE(qc.to_string().find("empty"), std::string::npos);
}

TEST(Drawer, OneRowPerQubitAndEqualWidths) {
  QuantumCircuit qc(3);
  qc.h(0).cx(0, 2).t(1);
  const auto lines = lines_of(draw(qc));
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].size(), lines[1].size());
  EXPECT_EQ(lines[1].size(), lines[2].size());
}

TEST(Drawer, NamedRegistersAppearInLabels) {
  QuantumCircuit qc;
  qc.add_qreg("alpha", 2);
  qc.add_qreg("beta", 1);
  qc.h(2);
  const std::string art = draw(qc);
  EXPECT_NE(art.find("alpha[0]"), std::string::npos);
  EXPECT_NE(art.find("alpha[1]"), std::string::npos);
  EXPECT_NE(art.find("beta[0]"), std::string::npos);
}

TEST(Drawer, VerticalConnectorSpansIntermediateQubits) {
  QuantumCircuit qc(3);
  qc.cx(0, 2);
  const auto lines = lines_of(draw(qc));
  // Qubit 1 sits between control and target: its row shows the wire.
  EXPECT_NE(lines[1].find('|'), std::string::npos);
}

TEST(Drawer, SwapUsesCrossMarkers) {
  QuantumCircuit qc(2);
  qc.swap(0, 1);
  const std::string art = draw(qc);
  EXPECT_EQ(std::count(art.begin(), art.end(), 'x'), 2);
}

TEST(Drawer, ToffoliShowsTwoControls) {
  QuantumCircuit qc(3);
  qc.ccx(0, 1, 2);
  const std::string art = draw(qc);
  EXPECT_EQ(std::count(art.begin(), art.end(), '*'), 2);
  EXPECT_NE(art.find('X'), std::string::npos);
}

TEST(Drawer, CswapShowsControlAndCrosses) {
  QuantumCircuit qc(3);
  qc.cswap(0, 1, 2);
  const std::string art = draw(qc);
  EXPECT_EQ(std::count(art.begin(), art.end(), '*'), 1);
  EXPECT_EQ(std::count(art.begin(), art.end(), 'x'), 2);
}

TEST(Drawer, ParametersArePrinted) {
  QuantumCircuit qc(1);
  qc.rz(1.5, 0);
  EXPECT_NE(draw(qc).find("RZ(1.5)"), std::string::npos);
}

TEST(Drawer, BarrierRendersAsHash) {
  QuantumCircuit qc(2);
  qc.h(0).barrier().h(1);
  const std::string art = draw(qc);
  EXPECT_GE(std::count(art.begin(), art.end(), '#'), 2);
}

TEST(Drawer, ResetRendersKet) {
  QuantumCircuit qc(1);
  qc.reset(0);
  EXPECT_NE(draw(qc).find("|0>"), std::string::npos);
}

TEST(Drawer, ConditionedGateMarked) {
  QuantumCircuit qc(1, 1);
  qc.measure(0, 0);
  qc.x(0).c_if(0, 1);
  EXPECT_NE(draw(qc).find("X?"), std::string::npos);
}

TEST(Drawer, ParallelGatesShareAColumn) {
  QuantumCircuit serial(1);
  serial.h(0).h(0);
  QuantumCircuit parallel(2);
  parallel.h(0).h(1);
  // Parallel layout must be narrower than two serial columns.
  const auto serial_width = lines_of(draw(serial))[0].size();
  const auto parallel_width = lines_of(draw(parallel))[0].size();
  EXPECT_LT(parallel_width, serial_width);
}

TEST(Drawer, ControlledRotationLabels) {
  QuantumCircuit qc(2);
  qc.crz(0.25, 0, 1);
  const std::string art = draw(qc);
  EXPECT_NE(art.find("RZ(0.25)"), std::string::npos);
  EXPECT_NE(art.find('*'), std::string::npos);
}

}  // namespace
}  // namespace qtc
