// Stress/soak suite for the execution service (CTest label `parallel`, so it
// runs under the TSan preset): N tenants x M jobs hammered concurrently.
// The property under test is the service's determinism contract — every
// job's counts are bitwise equal to a direct exec::execute with the same
// seed, whether the service runs 1 worker or 4, whatever the submission
// order or contention — plus per-tenant fairness (round-robin service, no
// tenant starved while another's queue drains), deterministic
// admission-control rejects, and exact stats accounting
// (submitted == completed + cancelled + rejected + failed) even under a
// concurrent cancel storm.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "arch/backend.hpp"
#include "core/rng.hpp"
#include "exec/execute.hpp"
#include "service/execution_service.hpp"
#include "transpiler/transpile_cache.hpp"

namespace qtc {
namespace {

using service::ExecutionService;
using service::JobHandle;
using service::JobResult;
using service::JobState;
using service::ServiceConfig;
using service::ServiceStats;

constexpr int kTenants = 3;
constexpr int kJobsPerTenant = 8;
constexpr int kShots = 96;

std::string tenant_name(int t) { return std::string("tenant-") + char('a' + t); }

/// Job j of tenant t: one of two ansatz structures per tenant (so the
/// batcher has real structural groups), parameters varying per iteration
/// the way a hybrid loop's angles do, and a unique per-job seed.
QuantumCircuit job_circuit(int t, int j) {
  const int n = 3 + (t % 2);  // 3 or 4 qubits, fits qx4
  QuantumCircuit qc(n, n);
  qc.h(0);
  for (int q = 0; q + 1 < n; ++q) qc.cx(q, q + 1);
  qc.ry(0.1 + 0.07 * j + 0.31 * t, 1);
  if (j % 2 == 1) qc.rz(0.2 + 0.05 * j, 0);  // second structure
  qc.cx(n - 1, 0);
  qc.measure_all();
  return qc;
}

exec::ExecuteOptions job_options(int t, int j) {
  exec::ExecuteOptions opts;
  opts.shots = kShots;
  opts.seed = 0x51C0DE + static_cast<std::uint64_t>(t) * 1000 + j;
  return opts;
}

/// Reference counts: one direct exec::execute per job, computed up front.
std::vector<std::vector<sim::Counts>> reference_counts(
    const arch::Backend& backend) {
  std::vector<std::vector<sim::Counts>> ref(kTenants);
  for (int t = 0; t < kTenants; ++t)
    for (int j = 0; j < kJobsPerTenant; ++j)
      ref[t].push_back(
          exec::execute(job_circuit(t, j), backend, job_options(t, j)).counts);
  return ref;
}

/// Submit every tenant's jobs from its own thread (real contention on the
/// submit path), wait for all, and return the per-job results.
std::vector<std::vector<JobResult>> hammer(ExecutionService& svc,
                                           const arch::Backend& backend) {
  std::vector<std::vector<JobHandle>> handles(kTenants);
  std::vector<std::thread> submitters;
  std::mutex mu;
  for (int t = 0; t < kTenants; ++t)
    submitters.emplace_back([&, t] {
      std::vector<JobHandle> mine;
      for (int j = 0; j < kJobsPerTenant; ++j)
        mine.push_back(svc.submit(job_circuit(t, j), backend, job_options(t, j),
                                  tenant_name(t)));
      std::lock_guard<std::mutex> lock(mu);
      handles[t] = std::move(mine);
    });
  for (auto& th : submitters) th.join();
  std::vector<std::vector<JobResult>> results(kTenants);
  for (int t = 0; t < kTenants; ++t)
    for (auto& h : handles[t]) results[t].push_back(h.result());
  return results;
}

// --- the tentpole property: bitwise determinism under contention ------------

TEST(ServiceStress, CountsBitwiseEqualDirectExecuteAt1And4Workers) {
  transpiler::TranspileCache::global().clear();
  const arch::Backend backend = arch::qx4_backend();
  const auto ref = reference_counts(backend);

  for (const int workers : {1, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ServiceConfig config;
    config.workers = workers;
    ExecutionService svc(config);
    const auto results = hammer(svc, backend);
    for (int t = 0; t < kTenants; ++t)
      for (int j = 0; j < kJobsPerTenant; ++j) {
        const JobResult& r = results[t][j];
        ASSERT_EQ(r.state, JobState::Done)
            << tenant_name(t) << " job " << j << ": " << r.error;
        EXPECT_EQ(r.counts.histogram, ref[t][j].histogram)
            << tenant_name(t) << " job " << j
            << " diverged from direct exec::execute";
        EXPECT_EQ(r.counts.shots, kShots);
      }
    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.submitted,
              static_cast<std::uint64_t>(kTenants * kJobsPerTenant));
    EXPECT_EQ(stats.submitted, stats.completed + stats.cancelled +
                                   stats.rejected + stats.failed);
    EXPECT_EQ(stats.completed, stats.submitted);
  }
}

TEST(ServiceStress, RepeatRunsAndBatchingOnOffAreBitwiseIdentical) {
  // Same fleet twice against one service (results must repeat exactly), and
  // once with batching disabled — the batcher may only change *when* a job
  // compiles, never what it computes.
  transpiler::TranspileCache::global().clear();
  const arch::Backend backend = arch::qx4_backend();
  const auto ref = reference_counts(backend);
  for (const int batching : {1, 0}) {
    SCOPED_TRACE(batching ? "batching on" : "batching off");
    ServiceConfig config;
    config.workers = 4;
    config.batching = batching;
    ExecutionService svc(config);
    for (int repeat = 0; repeat < 2; ++repeat) {
      const auto results = hammer(svc, backend);
      for (int t = 0; t < kTenants; ++t)
        for (int j = 0; j < kJobsPerTenant; ++j) {
          ASSERT_EQ(results[t][j].state, JobState::Done);
          EXPECT_EQ(results[t][j].counts.histogram, ref[t][j].histogram)
              << tenant_name(t) << " job " << j << " repeat " << repeat;
        }
    }
  }
}

// --- fairness: round-robin service, no tenant starved ------------------------

TEST(ServiceStress, RoundRobinServesTenantsFairly) {
  const arch::Backend backend = arch::qx4_backend();
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  bool warmup_running = false;
  ServiceConfig config;
  config.workers = 1;
  config.batching = 0;  // strict per-tenant round-robin, no cross-claiming
  config.on_job_running = [&](std::uint64_t) {
    std::unique_lock<std::mutex> lock(gate_mu);
    warmup_running = true;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  ExecutionService svc(config);

  // Park the single worker, then queue every tenant's jobs so the scheduler
  // sees all queues full when it starts draining.
  JobHandle warmup =
      svc.submit(job_circuit(0, 0), backend, job_options(0, 0), "zz-warmup");
  {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return warmup_running; });
  }
  std::vector<std::vector<JobHandle>> handles(kTenants);
  for (int t = 0; t < kTenants; ++t)
    for (int j = 0; j < kJobsPerTenant; ++j)
      handles[t].push_back(svc.submit(job_circuit(t, j), backend,
                                      job_options(t, j), tenant_name(t)));
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  svc.drain();
  ASSERT_EQ(warmup.result().state, JobState::Done);

  // Completion sequence numbers expose the interleaving: with round-robin
  // service the j-th completion of every tenant lands within one full round
  // of the j-th completion of any other — tenant t's j-th job may not wait
  // for another tenant's queue to drain.
  std::vector<std::vector<std::uint64_t>> seq(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    for (auto& h : handles[t]) {
      const JobResult r = h.result();
      ASSERT_EQ(r.state, JobState::Done);
      seq[t].push_back(r.completion_seq);
    }
    std::sort(seq[t].begin(), seq[t].end());
  }
  const std::uint64_t warmup_seq = warmup.result().completion_seq;
  for (int t = 0; t < kTenants; ++t)
    for (int j = 0; j < kJobsPerTenant; ++j) {
      // One warmup + j full rounds of kTenants jobs bound the j-th finish.
      EXPECT_LE(seq[t][j], warmup_seq + static_cast<std::uint64_t>(
                                            (j + 1) * kTenants))
          << tenant_name(t) << " starved: its " << j
          << "-th completion waited past a full round";
    }
  const ServiceStats stats = svc.stats();
  ASSERT_EQ(stats.per_tenant_served.size(),
            static_cast<std::size_t>(kTenants) + 1);  // + warmup tenant
  for (int t = 0; t < kTenants; ++t) {
    EXPECT_EQ(stats.per_tenant_served[t].first, tenant_name(t));
    EXPECT_EQ(stats.per_tenant_served[t].second,
              static_cast<std::uint64_t>(kJobsPerTenant));
  }
}

// --- admission control: rejects are deterministic and reported ---------------

TEST(ServiceStress, AdmissionRejectsAreDeterministicUnderConcurrency) {
  const arch::Backend backend = arch::qx4_backend();
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  bool parked = false;
  ServiceConfig config;
  config.workers = 1;
  config.queue_cap = 4;
  config.batching = 0;
  config.on_job_running = [&](std::uint64_t) {
    std::unique_lock<std::mutex> lock(gate_mu);
    parked = true;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  ExecutionService svc(config);

  JobHandle warmup =
      svc.submit(job_circuit(0, 0), backend, job_options(0, 0), "warm");
  {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return parked; });
  }
  // 10 concurrent submits into a cap-4 queue with the worker parked:
  // exactly 4 are accepted and exactly 6 rejected, whatever the order.
  constexpr int kSubmitters = 2, kPerSubmitter = 5;
  std::vector<JobHandle> all;
  std::mutex mu;
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s)
    submitters.emplace_back([&, s] {
      for (int j = 0; j < kPerSubmitter; ++j) {
        JobHandle h = svc.submit(job_circuit(1, s * kPerSubmitter + j), backend,
                                 job_options(1, s * kPerSubmitter + j),
                                 "hammer");
        std::lock_guard<std::mutex> lock(mu);
        all.push_back(h);
      }
    });
  for (auto& th : submitters) th.join();

  int accepted = 0, rejected = 0;
  for (const auto& h : all) {
    if (h.accepted()) {
      ++accepted;
    } else {
      ++rejected;
      const JobResult r = h.result();
      EXPECT_EQ(r.state, JobState::Rejected);
      EXPECT_NE(r.error.find("queue full (cap 4)"), std::string::npos)
          << r.error;
    }
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(rejected, 6);

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  svc.drain();
  ASSERT_EQ(warmup.result().state, JobState::Done);
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.submitted, 11u);  // warmup + 10 hammered
  EXPECT_EQ(stats.rejected, 6u);
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_EQ(stats.submitted, stats.completed + stats.cancelled +
                                 stats.rejected + stats.failed);
}

// --- cancel storm: counters stay exactly consistent --------------------------

TEST(ServiceStress, CancelStormLeavesStatsConsistentAndResultsExact) {
  transpiler::TranspileCache::global().clear();
  const arch::Backend backend = arch::qx4_backend();
  const auto ref = reference_counts(backend);
  ServiceConfig config;
  config.workers = 2;
  ExecutionService svc(config);

  std::vector<std::vector<JobHandle>> handles(kTenants);
  for (int t = 0; t < kTenants; ++t)
    for (int j = 0; j < kJobsPerTenant; ++j)
      handles[t].push_back(svc.submit(job_circuit(t, j), backend,
                                      job_options(t, j), tenant_name(t)));
  // Cancel every odd job from a racing thread while the fleet drains.
  std::thread canceller([&] {
    for (int t = 0; t < kTenants; ++t)
      for (int j = 1; j < kJobsPerTenant; j += 2) handles[t][j].cancel();
  });
  canceller.join();
  svc.drain();

  std::uint64_t done = 0, cancelled = 0;
  for (int t = 0; t < kTenants; ++t)
    for (int j = 0; j < kJobsPerTenant; ++j) {
      const JobResult r = handles[t][j].result();
      ASSERT_TRUE(r.state == JobState::Done || r.state == JobState::Cancelled)
          << to_string(r.state);
      if (r.state == JobState::Done) {
        ++done;
        // A racing cancel may lose, but it must never corrupt a result.
        EXPECT_EQ(r.counts.histogram, ref[t][j].histogram)
            << tenant_name(t) << " job " << j;
      } else {
        ++cancelled;
        EXPECT_EQ(r.counts.shots, 0) << "cancelled job kept a payload";
      }
    }
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.submitted,
            static_cast<std::uint64_t>(kTenants * kJobsPerTenant));
  EXPECT_EQ(stats.completed, done);
  EXPECT_EQ(stats.cancelled, cancelled);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.submitted, stats.completed + stats.cancelled +
                                 stats.rejected + stats.failed);
  // Even jobs were never cancelled: they must all be Done.
  EXPECT_GE(done, static_cast<std::uint64_t>(kTenants * kJobsPerTenant / 2));
}

}  // namespace
}  // namespace qtc
