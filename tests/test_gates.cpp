#include "core/gates.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"

namespace qtc {
namespace {

std::vector<double> sample_params(OpKind kind) {
  switch (op_num_params(kind)) {
    case 0:
      return {};
    case 1:
      return {0.7};
    case 2:
      return {0.7, -1.1};
    default:
      return {0.7, -1.1, 2.3};
  }
}

class UnitaryGateTest : public ::testing::TestWithParam<OpKind> {};

TEST_P(UnitaryGateTest, MatrixIsUnitary) {
  const OpKind kind = GetParam();
  const Matrix m = op_matrix(kind, sample_params(kind));
  EXPECT_TRUE(m.is_unitary(1e-10)) << op_name(kind);
  EXPECT_EQ(m.rows(), std::size_t{1} << op_num_qubits(kind));
}

TEST_P(UnitaryGateTest, InverseComposesToIdentity) {
  const OpKind kind = GetParam();
  if (kind == OpKind::ISWAP) GTEST_SKIP() << "iswap inverse is out of set";
  const auto params = sample_params(kind);
  const Matrix m = op_matrix(kind, params);
  const auto [inv_kind, inv_params] = op_inverse(kind, params);
  const Matrix mi = op_matrix(inv_kind, inv_params);
  EXPECT_TRUE(
      (m * mi).equal_up_to_phase(Matrix::identity(m.rows()), 1e-9))
      << op_name(kind);
}

TEST_P(UnitaryGateTest, NameRoundTrips) {
  const OpKind kind = GetParam();
  const auto parsed = op_from_name(op_name(kind));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllUnitaries, UnitaryGateTest,
    ::testing::Values(OpKind::I, OpKind::X, OpKind::Y, OpKind::Z, OpKind::H,
                      OpKind::S, OpKind::Sdg, OpKind::T, OpKind::Tdg,
                      OpKind::SX, OpKind::SXdg, OpKind::RX, OpKind::RY,
                      OpKind::RZ, OpKind::P, OpKind::U2, OpKind::U, OpKind::CX,
                      OpKind::CY, OpKind::CZ, OpKind::CH, OpKind::CRX,
                      OpKind::CRY, OpKind::CRZ, OpKind::CP, OpKind::CU,
                      OpKind::SWAP, OpKind::ISWAP, OpKind::RZZ, OpKind::RXX,
                      OpKind::CCX, OpKind::CSWAP),
    [](const auto& info) { return op_name(info.param); });

TEST(Gates, HadamardMatrixValues) {
  const Matrix h = op_matrix(OpKind::H);
  EXPECT_NEAR(h(0, 0).real(), SQRT1_2, 1e-12);
  EXPECT_NEAR(h(1, 1).real(), -SQRT1_2, 1e-12);
}

TEST(Gates, TIsFourthRootOfZ) {
  const Matrix t = op_matrix(OpKind::T);
  const Matrix z = op_matrix(OpKind::Z);
  EXPECT_TRUE((t * t * t * t).approx_equal(z, 1e-12));
}

TEST(Gates, SXSquaredIsX) {
  const Matrix sx = op_matrix(OpKind::SX);
  EXPECT_TRUE((sx * sx).approx_equal(op_matrix(OpKind::X), 1e-12));
}

TEST(Gates, CXControlIsLeastSignificantLocalBit) {
  // Convention check (matches the paper's CNOT example in Sec. V-A up to
  // qubit ordering): control = qubits[0] = local LSB.
  const Matrix cx = op_matrix(OpKind::CX);
  // |q1 q0> = |01> (index 1, control set) -> |11> (index 3).
  EXPECT_EQ(cx(3, 1), cplx(1, 0));
  EXPECT_EQ(cx(1, 3), cplx(1, 0));
  // |10> (control clear) stays.
  EXPECT_EQ(cx(2, 2), cplx(1, 0));
}

TEST(Gates, SwapExchangesMixedStates) {
  const Matrix sw = op_matrix(OpKind::SWAP);
  EXPECT_EQ(sw(1, 2), cplx(1, 0));
  EXPECT_EQ(sw(2, 1), cplx(1, 0));
  EXPECT_EQ(sw(0, 0), cplx(1, 0));
  EXPECT_EQ(sw(3, 3), cplx(1, 0));
}

TEST(Gates, SwapEqualsThreeAlternatingCnots) {
  // The decomposition the paper quotes in Sec. V-B.
  const Matrix cx01 = op_matrix(OpKind::CX);
  // CX with control = qubits[1]: conjugate by SWAP or build by hand.
  Matrix cx10 = Matrix::identity(4);
  cx10(2, 2) = 0;
  cx10(3, 3) = 0;
  cx10(2, 3) = 1;
  cx10(3, 2) = 1;
  EXPECT_TRUE((cx01 * cx10 * cx01).approx_equal(op_matrix(OpKind::SWAP)));
}

TEST(Gates, CcxFlipsTargetOnlyWhenBothControlsSet) {
  const Matrix ccx = op_matrix(OpKind::CCX);
  EXPECT_EQ(ccx(7, 3), cplx(1, 0));  // |011> -> |111>
  EXPECT_EQ(ccx(3, 7), cplx(1, 0));
  EXPECT_EQ(ccx(5, 5), cplx(1, 0));  // only one control set: unchanged
}

TEST(Gates, U3MatrixMatchesNamedGates) {
  EXPECT_TRUE(u3_matrix(PI / 2, 0, PI).approx_equal(op_matrix(OpKind::H), 1e-12));
  EXPECT_TRUE(u3_matrix(PI, 0, PI).approx_equal(op_matrix(OpKind::X), 1e-12));
}

TEST(Gates, U2IsU3WithHalfPiTheta) {
  EXPECT_TRUE(op_matrix(OpKind::U2, {0.3, 0.9})
                  .approx_equal(u3_matrix(PI / 2, 0.3, 0.9), 1e-12));
}

TEST(Gates, RzIsPhaseUpToGlobalPhase) {
  const Matrix rz = op_matrix(OpKind::RZ, {0.8});
  const Matrix p = op_matrix(OpKind::P, {0.8});
  EXPECT_TRUE(rz.equal_up_to_phase(p, 1e-12));
  EXPECT_FALSE(rz.approx_equal(p, 1e-12));
}

TEST(Gates, WrongParameterCountThrows) {
  EXPECT_THROW(op_matrix(OpKind::RX, {}), std::invalid_argument);
  EXPECT_THROW(op_matrix(OpKind::H, {0.5}), std::invalid_argument);
  EXPECT_THROW(op_inverse(OpKind::U, {1.0}), std::invalid_argument);
}

TEST(Gates, NonUnitaryMatrixRequestThrows) {
  EXPECT_THROW(op_matrix(OpKind::Measure), std::invalid_argument);
  EXPECT_THROW(op_matrix(OpKind::Barrier), std::invalid_argument);
}

TEST(Gates, AliasesResolve) {
  EXPECT_EQ(op_from_name("u1"), OpKind::P);
  EXPECT_EQ(op_from_name("u3"), OpKind::U);
  EXPECT_EQ(op_from_name("cnot"), OpKind::CX);
  EXPECT_EQ(op_from_name("toffoli"), OpKind::CCX);
  EXPECT_FALSE(op_from_name("frobnicate").has_value());
}

TEST(Gates, ZyzDecomposeRoundTripsRandomUnitaries) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const double theta = rng.uniform(0, PI);
    const double phi = rng.uniform(-PI, PI);
    const double lambda = rng.uniform(-PI, PI);
    const double alpha = rng.uniform(-PI, PI);
    const Matrix u =
        u3_matrix(theta, phi, lambda) * std::exp(cplx(0, alpha));
    const EulerAngles a = zyz_decompose(u);
    const Matrix rebuilt =
        u3_matrix(a.theta, a.phi, a.lambda) * std::exp(cplx(0, a.phase));
    EXPECT_LT(rebuilt.max_abs_diff(u), 1e-9);
  }
}

TEST(Gates, ZyzDecomposeHandlesDiagonalAndAntiDiagonal) {
  for (const OpKind kind : {OpKind::Z, OpKind::S, OpKind::T, OpKind::X,
                            OpKind::Y}) {
    const Matrix u = op_matrix(kind);
    const EulerAngles a = zyz_decompose(u);
    const Matrix rebuilt =
        u3_matrix(a.theta, a.phi, a.lambda) * std::exp(cplx(0, a.phase));
    EXPECT_LT(rebuilt.max_abs_diff(u), 1e-9) << op_name(kind);
  }
}

}  // namespace
}  // namespace qtc
