#include "noise/channel.hpp"
#include "noise/density_matrix.hpp"
#include "noise/noise_model.hpp"
#include "noise/trajectory.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arch/backend.hpp"
#include "sim/simulator.hpp"

namespace qtc::noise {
namespace {

// --- channels ---------------------------------------------------------------

class CptpChannelTest
    : public ::testing::TestWithParam<std::pair<const char*, KrausChannel>> {};

TEST_P(CptpChannelTest, IsTracePreserving) {
  EXPECT_TRUE(is_cptp(GetParam().second)) << GetParam().first;
}

INSTANTIATE_TEST_SUITE_P(
    AllChannels, CptpChannelTest,
    ::testing::Values(
        std::make_pair("identity", identity_channel()),
        std::make_pair("depolarizing", depolarizing(0.1)),
        std::make_pair("depolarizing_full", depolarizing(1.0)),
        std::make_pair("depolarizing2", depolarizing2(0.08)),
        std::make_pair("bit_flip", bit_flip(0.2)),
        std::make_pair("phase_flip", phase_flip(0.3)),
        std::make_pair("bit_phase_flip", bit_phase_flip(0.15)),
        std::make_pair("amplitude_damping", amplitude_damping(0.25)),
        std::make_pair("phase_damping", phase_damping(0.4)),
        std::make_pair("thermal", thermal_relaxation(50, 40, 1.0)),
        std::make_pair("composed",
                       compose(amplitude_damping(0.1), phase_flip(0.05)))),
    [](const auto& info) { return info.param.first; });

TEST(Channel, BadProbabilityThrows) {
  EXPECT_THROW(depolarizing(-0.1), std::invalid_argument);
  EXPECT_THROW(bit_flip(1.5), std::invalid_argument);
  EXPECT_THROW(thermal_relaxation(10, 25, 1.0), std::invalid_argument);
  EXPECT_THROW(thermal_relaxation(-1, 1, 1.0), std::invalid_argument);
}

TEST(Channel, ComposeArityMismatchThrows) {
  EXPECT_THROW(compose(depolarizing(0.1), depolarizing2(0.1)),
               std::invalid_argument);
}

TEST(Channel, AmplitudeDampingDecaysExcitedState) {
  // |1><1| under amplitude damping gamma: P(1) -> 1 - gamma.
  const double gamma = 0.3;
  DensityMatrix rho(std::vector<cplx>{0, 1});
  rho.apply_channel(amplitude_damping(gamma), {0});
  EXPECT_NEAR(rho.probability_of_one(0), 1 - gamma, 1e-12);
  EXPECT_NEAR(rho.trace_real(), 1.0, 1e-12);
}

TEST(Channel, PhaseDampingKillsCoherence) {
  // |+><+| under full phase damping becomes maximally mixed diagonal.
  DensityMatrix rho(std::vector<cplx>{SQRT1_2, SQRT1_2});
  rho.apply_channel(phase_damping(1.0), {0});
  EXPECT_NEAR(std::abs(rho.matrix()(0, 1)), 0.0, 1e-12);
  EXPECT_NEAR(rho.probability_of_one(0), 0.5, 1e-12);
  EXPECT_NEAR(rho.purity(), 0.5, 1e-12);
}

TEST(Channel, DepolarizingShrinksBlochVector) {
  // <Z> of |0> under depolarizing(p) shrinks by 1 - 4p/3.
  const double p = 0.3;
  DensityMatrix rho(1);
  rho.apply_channel(depolarizing(p), {0});
  EXPECT_NEAR(rho.expectation_pauli("Z"), 1 - 4 * p / 3, 1e-12);
}


TEST(Channel, TensorOfSingleQubitChannelsIsCptp) {
  const KrausChannel combined =
      tensor(amplitude_damping(0.2), phase_damping(0.3));
  EXPECT_EQ(combined.num_qubits, 2);
  EXPECT_TRUE(is_cptp(combined));
  EXPECT_THROW(tensor(depolarizing2(0.1), depolarizing(0.1)),
               std::invalid_argument);
}

TEST(Channel, TensorActsIndependently) {
  // Damping on the low qubit only must not touch the high qubit.
  DensityMatrix rho(std::vector<cplx>{0, 0, 0, 1});  // |11>
  rho.apply_channel(tensor(amplitude_damping(1.0), identity_channel()),
                    {0, 1});
  // Qubit 0 decayed to |0>, qubit 1 still |1>: state |10>.
  EXPECT_NEAR(rho.probability_of_one(0), 0.0, 1e-12);
  EXPECT_NEAR(rho.probability_of_one(1), 1.0, 1e-12);
}

TEST(NoiseModel, FromBackendIncludesThermalRelaxation) {
  // The |1> state must decay under repeated noisy identity-free gates: use
  // an X-pair (logical identity) so only the channel acts asymmetrically.
  const NoiseModel model = from_backend(arch::qx4_backend());
  Operation x;
  x.kind = OpKind::X;
  x.qubits = {0};
  const auto ch = model.error_for(x);
  ASSERT_TRUE(ch.has_value());
  // Amplitude damping breaks unital symmetry: Lambda(|1><1|) keeps less
  // excited-state population than Lambda(|0><0|) keeps ground population.
  DensityMatrix excited(std::vector<cplx>{0, 1});
  excited.apply_channel(*ch, {0});
  DensityMatrix ground(std::vector<cplx>{1, 0});
  ground.apply_channel(*ch, {0});
  EXPECT_LT(excited.probability_of_one(0), 1.0 - 1e-6);
  EXPECT_GT(1.0 - ground.probability_of_one(0),
            excited.probability_of_one(0));
}

// --- noise model ------------------------------------------------------------

TEST(NoiseModel, AllQubitErrorMatchesEveryOperand) {
  NoiseModel model;
  model.add_all_qubit_error(bit_flip(0.1), OpKind::H);
  Operation op;
  op.kind = OpKind::H;
  op.qubits = {3};
  EXPECT_TRUE(model.error_for(op).has_value());
  op.kind = OpKind::X;
  EXPECT_FALSE(model.error_for(op).has_value());
}

TEST(NoiseModel, SpecificQubitErrorTakesPrecedence) {
  NoiseModel model;
  model.add_all_qubit_error(bit_flip(0.1), OpKind::H);
  model.add_qubit_error(bit_flip(0.9), OpKind::H, {2});
  Operation op;
  op.kind = OpKind::H;
  op.qubits = {2};
  const auto ch = model.error_for(op);
  ASSERT_TRUE(ch.has_value());
  // p = 0.9 channel has sqrt(0.1) on the identity Kraus op.
  EXPECT_NEAR(ch->ops[0](0, 0).real(), std::sqrt(0.1), 1e-12);
}

TEST(NoiseModel, ArityMismatchThrows) {
  NoiseModel model;
  EXPECT_THROW(model.add_all_qubit_error(depolarizing(0.1), OpKind::CX),
               std::invalid_argument);
  EXPECT_THROW(model.add_all_qubit_error(depolarizing2(0.1), OpKind::H),
               std::invalid_argument);
  EXPECT_THROW(model.add_all_qubit_error(depolarizing(0.1), OpKind::Measure),
               std::invalid_argument);
}

TEST(NoiseModel, ReadoutErrorFlipsWithGivenProbability) {
  NoiseModel model;
  model.set_readout_error(0, {1.0, 0.0});  // always flip 1 -> 0
  Rng rng(1);
  EXPECT_EQ(model.apply_readout(0, 1, rng), 0);
  EXPECT_EQ(model.apply_readout(0, 0, rng), 0);
  EXPECT_EQ(model.apply_readout(5, 1, rng), 1);  // no error registered
}

TEST(NoiseModel, FromBackendCoversGatesAndReadout) {
  const NoiseModel model = from_backend(arch::qx4_backend());
  EXPECT_TRUE(model.has_noise());
  Operation h;
  h.kind = OpKind::H;
  h.qubits = {0};
  EXPECT_TRUE(model.error_for(h).has_value());
  Operation cx;
  cx.kind = OpKind::CX;
  cx.qubits = {3, 2};  // native edge
  EXPECT_TRUE(model.error_for(cx).has_value());
  cx.qubits = {2, 3};  // reversed orientation also noisy
  EXPECT_TRUE(model.error_for(cx).has_value());
  cx.qubits = {0, 4};  // not a coupled pair: no specific error registered
  EXPECT_FALSE(model.error_for(cx).has_value());
  EXPECT_NE(model.readout_error(0), nullptr);
}

// --- density matrix ----------------------------------------------------------

TEST(DensityMatrix, PureStateConstructorReproducesProjector) {
  DensityMatrix rho(std::vector<cplx>{SQRT1_2, 0, 0, SQRT1_2});
  EXPECT_NEAR(rho.matrix()(0, 0).real(), 0.5, 1e-12);
  EXPECT_NEAR(rho.matrix()(0, 3).real(), 0.5, 1e-12);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
}

TEST(DensityMatrix, NoiselessEvolutionMatchesStatevector) {
  QuantumCircuit qc(3);
  qc.h(0).cx(0, 1).t(1).cx(1, 2).rz(0.3, 2).h(2);
  sim::StatevectorSimulator svsim;
  const auto sv = svsim.statevector(qc).amplitudes();
  DensityMatrixSimulator dmsim;
  const DensityMatrix rho = dmsim.evolve(qc, NoiseModel{});
  EXPECT_NEAR(rho.fidelity(sv), 1.0, 1e-10);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-10);
}

TEST(DensityMatrix, DepolarizedBellFidelityMatchesAnalytic) {
  // Bell circuit with 2q depolarizing p after the CX. Our convention is
  // "one of the 15 non-identity Paulis with probability p", equivalent to
  // rho -> (1 - 16p/15) rho + (16p/15) I/4, so the Bell fidelity is
  // F = 1 - (16p/15)(3/4) = 1 - 0.8 p.
  const double p = 0.2;
  NoiseModel model;
  model.add_all_qubit_error(depolarizing2(p), OpKind::CX);
  QuantumCircuit qc(2);
  qc.h(0).cx(0, 1);
  DensityMatrixSimulator sim;
  const DensityMatrix rho = sim.evolve(qc, model);
  sim::StatevectorSimulator svsim;
  const auto ideal = svsim.statevector(qc).amplitudes();
  EXPECT_NEAR(rho.fidelity(ideal), 1 - 0.8 * p, 1e-10);
}

TEST(DensityMatrix, PartialTraceOfBellIsMaximallyMixed) {
  QuantumCircuit qc(2);
  qc.h(0).cx(0, 1);
  DensityMatrixSimulator sim;
  const DensityMatrix rho = sim.evolve(qc, NoiseModel{});
  const DensityMatrix reduced = rho.partial_trace({0});
  EXPECT_NEAR(reduced.matrix()(0, 0).real(), 0.5, 1e-12);
  EXPECT_NEAR(reduced.matrix()(1, 1).real(), 0.5, 1e-12);
  EXPECT_NEAR(std::abs(reduced.matrix()(0, 1)), 0.0, 1e-12);
  EXPECT_NEAR(reduced.purity(), 0.5, 1e-12);
}

TEST(DensityMatrix, PartialTraceOfProductStateStaysPure) {
  QuantumCircuit qc(2);
  qc.h(0).x(1);
  DensityMatrixSimulator sim;
  const DensityMatrix rho = sim.evolve(qc, NoiseModel{});
  EXPECT_NEAR(rho.partial_trace({0}).purity(), 1.0, 1e-12);
  EXPECT_NEAR(rho.partial_trace({1}).probability_of_one(0), 1.0, 1e-12);
}

TEST(DensityMatrix, ExpectationPauliAgreesWithStatevector) {
  QuantumCircuit qc(2);
  qc.h(0).cx(0, 1);
  DensityMatrixSimulator dms;
  const DensityMatrix rho = dms.evolve(qc, NoiseModel{});
  EXPECT_NEAR(rho.expectation_pauli("ZZ"), 1.0, 1e-10);
  EXPECT_NEAR(rho.expectation_pauli("XX"), 1.0, 1e-10);
  EXPECT_NEAR(rho.expectation_pauli("YY"), -1.0, 1e-10);
}

TEST(DensityMatrix, SamplingWithReadoutError) {
  NoiseModel model;
  model.set_readout_error(0, {0.0, 1.0});  // always read 1 when state is 0
  QuantumCircuit qc(1, 1);
  qc.measure(0, 0);
  DensityMatrixSimulator sim;
  const auto result = sim.run(qc, model, 100);
  EXPECT_EQ(result.counts.count("1"), 100);
}

TEST(DensityMatrix, RejectsResetAndConditioned) {
  NoiseModel none;
  DensityMatrixSimulator sim;
  QuantumCircuit with_reset(1, 1);
  with_reset.reset(0);
  EXPECT_THROW(sim.evolve(with_reset, none), std::invalid_argument);
}

// --- trajectory simulator ----------------------------------------------------

TEST(Trajectory, NoiselessMatchesIdealSimulator) {
  QuantumCircuit qc(2, 2);
  qc.h(0).cx(0, 1).measure_all();
  TrajectorySimulator traj(5);
  const auto counts = traj.run(qc, NoiseModel{}, 2000);
  EXPECT_EQ(counts.count("01") + counts.count("10"), 0);
  EXPECT_NEAR(counts.probability("00"), 0.5, 0.05);
}

TEST(Trajectory, MatchesDensityMatrixUnderDepolarizing) {
  const double p = 0.1;
  NoiseModel model;
  model.add_all_qubit_error(depolarizing2(p), OpKind::CX);
  model.add_all_qubit_error(depolarizing(p / 10), OpKind::H);
  QuantumCircuit qc(2, 2);
  qc.h(0).cx(0, 1).measure_all();
  DensityMatrixSimulator dms(7);
  TrajectorySimulator traj(11);
  const auto exact = dms.run(qc, model, 20000);
  const auto sampled = traj.run(qc, model, 20000);
  for (const std::string key : {"00", "01", "10", "11"})
    EXPECT_NEAR(sampled.probability(key), exact.counts.probability(key), 0.02)
        << key;
}

TEST(Trajectory, BitFlipAfterEveryXGate) {
  NoiseModel model;
  model.add_all_qubit_error(bit_flip(1.0), OpKind::X);  // always flip back
  QuantumCircuit qc(1, 1);
  qc.x(0).measure(0, 0);
  TrajectorySimulator traj;
  const auto counts = traj.run(qc, model, 100);
  EXPECT_EQ(counts.count("0"), 100);  // X then guaranteed flip = identity
}

TEST(Trajectory, SupportsConditionalsUnderNoise) {
  NoiseModel model;
  model.set_readout_error(0, {0.0, 0.0});
  QuantumCircuit qc(2, 2);
  qc.x(0);
  qc.measure(0, 0);
  qc.x(1).c_if(0, 1);
  qc.measure(1, 1);
  TrajectorySimulator traj;
  const auto counts = traj.run(qc, model, 50);
  EXPECT_EQ(counts.count("11"), 50);
}

TEST(Trajectory, ReadoutErrorRate) {
  NoiseModel model;
  model.set_readout_error(0, {0.0, 0.25});
  QuantumCircuit qc(1, 1);
  qc.measure(0, 0);
  TrajectorySimulator traj(33);
  const auto counts = traj.run(qc, model, 8000);
  EXPECT_NEAR(counts.probability("1"), 0.25, 0.02);
}

TEST(Trajectory, GhzSuccessProbabilityDegradesWithNoise) {
  // The paper's Aer story: growing noise deteriorates algorithm output.
  auto ghz_success = [](double p) {
    NoiseModel model = uniform_depolarizing(p / 10, p);
    QuantumCircuit qc(3, 3);
    qc.h(0).cx(0, 1).cx(1, 2).measure_all();
    TrajectorySimulator traj(17);
    const auto counts = traj.run(qc, model, 4000);
    return counts.probability("000") + counts.probability("111");
  };
  const double clean = ghz_success(0.0);
  const double mild = ghz_success(0.02);
  const double heavy = ghz_success(0.2);
  EXPECT_NEAR(clean, 1.0, 1e-12);
  EXPECT_GT(clean, mild);
  EXPECT_GT(mild, heavy);
}

}  // namespace
}  // namespace qtc::noise
