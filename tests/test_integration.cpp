// Cross-module integration properties: whole-pipeline invariants that the
// per-module suites cannot see.

#include <gtest/gtest.h>

#include <numeric>

#include "aqua/algorithms.hpp"
#include "aqua/ansatz.hpp"
#include "aqua/h2.hpp"
#include "aqua/vqe.hpp"
#include "arch/backend.hpp"
#include "dd/simulator.hpp"
#include "ignis/mitigation.hpp"
#include "map/noise_aware.hpp"
#include "noise/trajectory.hpp"
#include "qasm/parser.hpp"
#include "sim/stabilizer.hpp"
#include "sim/simulator.hpp"
#include "transpiler/direction.hpp"
#include "transpiler/transpile.hpp"

namespace qtc {
namespace {

QuantumCircuit random_universal_circuit(int n, int gates, std::uint64_t seed) {
  Rng rng(seed);
  QuantumCircuit qc(n);
  for (int g = 0; g < gates; ++g) {
    const int q = static_cast<int>(rng.index(n));
    const int q2 = (q + 1 + static_cast<int>(rng.index(n - 1))) % n;
    switch (rng.index(10)) {
      case 0:
        qc.h(q);
        break;
      case 1:
        qc.t(q);
        break;
      case 2:
        qc.u(rng.uniform(0, PI), rng.uniform(-PI, PI), rng.uniform(-PI, PI),
             q);
        break;
      case 3:
        qc.rz(rng.uniform(-PI, PI), q);
        break;
      case 4:
        qc.sx(q);
        break;
      case 5:
        qc.cz(q, q2);
        break;
      case 6:
        qc.swap(q, q2);
        break;
      case 7:
        qc.cp(rng.uniform(-PI, PI), q, q2);
        break;
      default:
        qc.cx(q, q2);
    }
  }
  return qc;
}

// --- transpile pipeline: every (mapper, level) preserves semantics -----------

struct PipelineParam {
  transpiler::MapperKind mapper;
  int level;
};

class PipelineTest : public ::testing::TestWithParam<PipelineParam> {};

TEST_P(PipelineTest, RandomCircuitsStayEquivalentOnQx4) {
  const auto [mapper, level] = GetParam();
  for (std::uint64_t seed : {101u, 202u, 303u}) {
    const QuantumCircuit logical = random_universal_circuit(4, 25, seed);
    transpiler::TranspileOptions options;
    options.mapper = mapper;
    options.optimization_level = level;
    const auto result =
        transpiler::transpile(logical, arch::qx4_backend(), options);
    ASSERT_TRUE(
        transpiler::satisfies_coupling(result.circuit, arch::ibm_qx4()));
    sim::StatevectorSimulator sim;
    const auto mapped = sim.statevector(result.circuit).amplitudes();
    const auto expected = map::embed_state(
        sim.statevector(logical).amplitudes(), result.final_layout, 5);
    EXPECT_TRUE(states_equal_up_to_phase(mapped, expected, 1e-7))
        << "seed " << seed;
  }
}

std::string pipeline_name(const ::testing::TestParamInfo<PipelineParam>& i) {
  std::string name;
  switch (i.param.mapper) {
    case transpiler::MapperKind::Naive:
      name = "naive";
      break;
    case transpiler::MapperKind::Sabre:
      name = "sabre";
      break;
    case transpiler::MapperKind::AStar:
      name = "astar";
      break;
  }
  return name + "_level" + std::to_string(i.param.level);
}

INSTANTIATE_TEST_SUITE_P(
    MappersAndLevels, PipelineTest,
    ::testing::Values(PipelineParam{transpiler::MapperKind::Naive, 0},
                      PipelineParam{transpiler::MapperKind::Naive, 2},
                      PipelineParam{transpiler::MapperKind::Sabre, 1},
                      PipelineParam{transpiler::MapperKind::Sabre, 2},
                      PipelineParam{transpiler::MapperKind::AStar, 2}),
    pipeline_name);

// --- counts-level equivalence: measured circuits through the full stack ------

TEST(Integration, MeasuredCircuitCountsSurviveTranspilation) {
  // Clbit wiring makes counts layout-independent: the transpiled circuit
  // must produce the same distribution as the logical one.
  QuantumCircuit logical(3, 3);
  logical.h(0).cx(0, 1).t(1).cx(1, 2).h(2);
  logical.measure_all();
  const auto result = transpiler::transpile(logical, arch::qx4_backend());
  sim::StatevectorSimulator s1(5), s2(5);
  const auto before = s1.run(logical, 8000).counts;
  const auto after = s2.run(result.circuit, 8000).counts;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const std::string bits = sim::format_bits(i, 3);
    EXPECT_NEAR(before.probability(bits), after.probability(bits), 0.03)
        << bits;
  }
}

// --- QASM round trip through transpilation -----------------------------------

TEST(Integration, TranspiledCircuitSurvivesQasmRoundTrip) {
  const QuantumCircuit logical = random_universal_circuit(4, 20, 7);
  const auto result = transpiler::transpile(logical, arch::qx4_backend());
  const QuantumCircuit back = qasm::parse(qasm::emit(result.circuit));
  sim::StatevectorSimulator sim;
  EXPECT_LT(max_abs_diff(sim.statevector(result.circuit).amplitudes(),
                         sim.statevector(back).amplitudes()),
            1e-9);
}

TEST(Integration, QasmRoundTripOnRandomCircuits) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const QuantumCircuit qc = random_universal_circuit(5, 40, seed);
    const QuantumCircuit back = qasm::parse(qasm::emit(qc));
    sim::StatevectorSimulator sim;
    EXPECT_LT(max_abs_diff(sim.statevector(qc).amplitudes(),
                           sim.statevector(back).amplitudes()),
              1e-9)
        << "seed " << seed;
  }
}

// --- three simulators agree ---------------------------------------------------

TEST(Integration, ThreeEnginesAgreeOnCliffordCircuit) {
  QuantumCircuit qc(4, 4);
  qc.h(0).cx(0, 1).s(1).cz(1, 2).cx(2, 3).h(3);
  qc.measure_all();
  sim::StatevectorSimulator array(9);
  sim::StabilizerSimulator tableau(9);
  dd::DDSimulator dds(9);
  const auto ca = array.run(qc, 8000).counts;
  const auto ct = tableau.run(qc, 8000);
  const auto cd = dds.run(qc, 8000).counts;
  for (std::uint64_t i = 0; i < 16; ++i) {
    const std::string bits = sim::format_bits(i, 4);
    EXPECT_NEAR(ca.probability(bits), ct.probability(bits), 0.035) << bits;
    EXPECT_NEAR(ca.probability(bits), cd.probability(bits), 0.035) << bits;
  }
}

// --- algorithm -> compile -> noisy run -> mitigate -----------------------------

TEST(Integration, MitigationImprovesCompiledBellOnNoisyBackend) {
  const arch::Backend backend = arch::qx4_backend();
  QuantumCircuit bell(2, 2);
  bell.h(0).cx(0, 1).measure_all();
  const auto compiled = transpiler::transpile(bell, backend);
  // Readout-only noise so mitigation can fully repair it.
  noise::NoiseModel model;
  for (int q = 0; q < 5; ++q)
    model.set_readout_error(q, {0.08, 0.08});
  // All physical qubits carry the same readout error, so a 2-bit mitigator
  // calibrated with that rate matches whatever qubits the layout picked.
  noise::NoiseModel cal_model;
  cal_model.set_readout_error(0, {0.08, 0.08});
  cal_model.set_readout_error(1, {0.08, 0.08});
  const auto mitigator =
      ignis::MeasurementMitigator::calibrate(2, cal_model, 20000, 3);
  noise::TrajectorySimulator noisy(13);
  const auto raw = noisy.run(compiled.circuit, model, 20000);
  const auto corrected = mitigator.apply(raw);
  sim::StatevectorSimulator ideal(13);
  const auto reference = ideal.run(bell, 20000).counts;
  const double tv_raw =
      ignis::MeasurementMitigator::total_variation(raw, reference, 2);
  const double tv_fixed =
      ignis::MeasurementMitigator::total_variation(corrected, reference, 2);
  EXPECT_LT(tv_fixed, tv_raw / 2);
}

// --- chemistry through the compiler --------------------------------------------

TEST(Integration, VqeEnergyUnchangedByTranspilation) {
  const aqua::H2Problem problem = aqua::h2_problem(0.735);
  const aqua::Ansatz ansatz = aqua::ry_linear(4, 1);
  std::vector<double> params;
  Rng rng(3);
  for (int i = 0; i < ansatz.num_parameters; ++i)
    params.push_back(rng.uniform(-PI, PI));
  const QuantumCircuit prep = ansatz.build(params);
  const double direct = aqua::estimate_expectation(prep, problem.hamiltonian);
  // Compile the state-preparation circuit for QX5 and evaluate the same
  // observable on the physical qubits via the final layout.
  const auto compiled = transpiler::transpile(prep, arch::qx5_backend());
  sim::StatevectorSimulator sim;
  const auto physical = sim.statevector(compiled.circuit);
  // Build the permuted Pauli observable.
  double compiled_energy = 0;
  for (const auto& term : problem.hamiltonian.terms()) {
    std::string phys(16, 'I');
    for (int l = 0; l < 4; ++l) {
      const char c = term.paulis[4 - 1 - l];
      phys[16 - 1 - compiled.final_layout.l2p[l]] = c;
    }
    compiled_energy +=
        term.coeff.real() * physical.expectation_pauli(phys);
  }
  EXPECT_NEAR(compiled_energy, direct, 1e-8);
}

// --- order finding through the stabilizer-incompatible path ---------------------

TEST(Integration, ShorThroughDDSimulator) {
  // The order-finding circuit is non-Clifford; the DD engine must agree
  // with the array engine on the counting distribution.
  const QuantumCircuit qc = aqua::shor_order_finding(7, 3);
  dd::DDSimulator dds(3);
  sim::StatevectorSimulator array(3);
  const auto cd = dds.run(qc, 6000).counts;
  const auto ca = array.run(qc, 6000).counts;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const std::string bits = sim::format_bits(i, 3);
    EXPECT_NEAR(cd.probability(bits), ca.probability(bits), 0.03) << bits;
  }
}

}  // namespace
}  // namespace qtc
