// Contracts of the parallel execution engine (core/parallel.hpp) and its
// users: exact coverage of parallel_for, bitwise thread-invariance of the
// reductions and gate kernels, and seed-determinism of the simulator's
// sampling and per-shot paths at 1 vs 4 threads. Run under TSan via the
// `tsan` CMake preset (`ctest -L parallel`).

#include "core/parallel.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "sim/simulator.hpp"
#include "sim/statevector.hpp"

namespace qtc {
namespace {

/// Restores the env/hardware-default thread count when a test exits.
struct ThreadCountGuard {
  ~ThreadCountGuard() { parallel::set_num_threads(0); }
};

/// Random circuit big enough (13 qubits > the serial cutoff) to actually
/// engage the pool, mixing the 1q fast path, the CX fast path and the
/// generic apply_matrix path.
QuantumCircuit pool_sized_circuit(std::uint64_t seed, int gates = 60) {
  const int n = 13;
  Rng rng(seed);
  QuantumCircuit qc(n);
  for (int g = 0; g < gates; ++g) {
    const int q = static_cast<int>(rng.index(n));
    const int q2 = (q + 1 + static_cast<int>(rng.index(n - 1))) % n;
    switch (rng.index(6)) {
      case 0:
        qc.h(q);
        break;
      case 1:
        qc.rz(rng.uniform(-PI, PI), q);
        break;
      case 2:
        qc.u(rng.uniform(0, PI), rng.uniform(-PI, PI), rng.uniform(-PI, PI),
             q);
        break;
      case 3:
        qc.cp(rng.uniform(-PI, PI), q, q2);  // generic 2q matrix path
        break;
      case 4:
        qc.swap(q, q2);
        break;
      default:
        qc.cx(q, q2);
    }
  }
  return qc;
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadCountGuard guard;
  parallel::set_num_threads(4);
  std::vector<int> hits(std::size_t{1} << 15, 0);
  parallel::parallel_for(0, hits.size(),
                         [&](std::uint64_t lo, std::uint64_t hi) {
                           for (std::uint64_t i = lo; i < hi; ++i) ++hits[i];
                         });
  for (std::size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i], 1) << i;
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadCountGuard guard;
  parallel::set_num_threads(4);
  bool called = false;
  parallel::parallel_for(5, 5, [&](std::uint64_t, std::uint64_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesExceptionsAndStaysUsable) {
  ThreadCountGuard guard;
  parallel::set_num_threads(4);
  const std::uint64_t n = std::uint64_t{1} << 15;
  EXPECT_THROW(parallel::parallel_for(
                   0, n,
                   [](std::uint64_t, std::uint64_t) {
                     throw std::runtime_error("kernel failure");
                   }),
               std::runtime_error);
  // The pool must survive a throwing body and service the next region.
  std::vector<int> hits(n, 0);
  parallel::parallel_for(0, n, [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t i = lo; i < hi; ++i) ++hits[i];
  });
  EXPECT_EQ(hits.front(), 1);
  EXPECT_EQ(hits.back(), 1);
}

TEST(ParallelReduce, BitwiseInvariantAcrossThreadCounts) {
  ThreadCountGuard guard;
  std::vector<double> values(std::size_t{1} << 17);
  Rng rng(11);
  for (auto& v : values) v = rng.uniform(-1, 1);
  const auto block_sum = [&](std::uint64_t lo, std::uint64_t hi) {
    double s = 0;
    for (std::uint64_t i = lo; i < hi; ++i) s += values[i];
    return s;
  };
  parallel::set_num_threads(1);
  const double serial = parallel::parallel_reduce(0, values.size(), block_sum);
  parallel::set_num_threads(4);
  const double parallel4 =
      parallel::parallel_reduce(0, values.size(), block_sum);
  EXPECT_EQ(serial, parallel4);  // bitwise, not approximately
}

TEST(NumThreads, EnvVarAndOverridePrecedence) {
  ThreadCountGuard guard;
  parallel::set_num_threads(0);
  ASSERT_EQ(setenv("QTC_NUM_THREADS", "3", 1), 0);
  EXPECT_EQ(parallel::num_threads(), 3);
  parallel::set_num_threads(2);  // programmatic override beats the env
  EXPECT_EQ(parallel::num_threads(), 2);
  parallel::set_num_threads(0);
  ASSERT_EQ(setenv("QTC_NUM_THREADS", "garbage", 1), 0);
  EXPECT_GE(parallel::num_threads(), 1);  // malformed env falls back
  unsetenv("QTC_NUM_THREADS");
}

TEST(ParallelKernels, AmplitudesMatchSerialExactly) {
  ThreadCountGuard guard;
  const QuantumCircuit qc = pool_sized_circuit(21);
  parallel::set_num_threads(1);
  sim::Statevector serial(qc.num_qubits());
  serial.apply_circuit(qc);
  parallel::set_num_threads(4);
  sim::Statevector parallel4(qc.num_qubits());
  parallel4.apply_circuit(qc);
  ASSERT_EQ(serial.dim(), parallel4.dim());
  for (std::size_t i = 0; i < serial.dim(); ++i)
    ASSERT_EQ(serial.amplitudes()[i], parallel4.amplitudes()[i]) << i;
}

TEST(ParallelKernels, ReductionsThreadInvariant) {
  ThreadCountGuard guard;
  const QuantumCircuit qc = pool_sized_circuit(33);
  parallel::set_num_threads(1);
  sim::Statevector sv(qc.num_qubits());
  sv.apply_circuit(qc);
  const double p1_serial = sv.probability_of_one(5);
  const double norm_serial = sv.norm();
  const std::string zz(qc.num_qubits(), 'Z');
  const double ev_serial = sv.expectation_pauli(zz);
  const auto cdf_serial = sv.cumulative_probabilities();
  parallel::set_num_threads(4);
  EXPECT_EQ(sv.probability_of_one(5), p1_serial);
  EXPECT_EQ(sv.norm(), norm_serial);
  EXPECT_EQ(sv.expectation_pauli(zz), ev_serial);
  EXPECT_EQ(sv.cumulative_probabilities(), cdf_serial);
}

TEST(CdfSampling, MatchesDistributionAndEdges) {
  sim::Statevector sv(2);
  QuantumCircuit bell(2);
  bell.h(0).cx(0, 1);
  sv.apply_circuit(bell);
  const auto cdf = sv.cumulative_probabilities();
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_NEAR(cdf.back(), 1.0, 1e-12);
  EXPECT_EQ(sim::sample_cdf(cdf, 0.0), 0u);    // first nonzero bucket
  EXPECT_EQ(sim::sample_cdf(cdf, 0.25), 0u);   // |00>
  EXPECT_EQ(sim::sample_cdf(cdf, 0.75), 3u);   // |11>
  EXPECT_EQ(sim::sample_cdf(cdf, 0.999999), 3u);
  // Never lands on the zero-probability middle states.
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t s = sim::sample_cdf(cdf, rng.uniform());
    EXPECT_TRUE(s == 0 || s == 3) << s;
  }
}

TEST(Determinism, SamplingPathCountsThreadInvariant) {
  ThreadCountGuard guard;
  QuantumCircuit qc = pool_sized_circuit(55, 40);
  QuantumCircuit measured(qc.num_qubits(), qc.num_qubits());
  for (const auto& op : qc.ops()) measured.append(op);
  measured.measure_all();
  parallel::set_num_threads(1);
  sim::StatevectorSimulator s1(2024);
  const auto c1 = s1.run(measured, 2000).counts;
  parallel::set_num_threads(4);
  sim::StatevectorSimulator s4(2024);
  const auto c4 = s4.run(measured, 2000).counts;
  EXPECT_EQ(c1.histogram, c4.histogram);
  EXPECT_EQ(c1.shots, c4.shots);
}

TEST(Determinism, PerShotPathCountsThreadInvariant) {
  ThreadCountGuard guard;
  // Mid-circuit measurement + conditional + reset forces the per-shot path.
  QuantumCircuit qc(3, 3);
  qc.h(0).cx(0, 1);
  qc.measure(0, 0);
  qc.x(2).c_if(0, 1);
  qc.reset(1);
  qc.h(1);
  qc.measure(1, 1);
  qc.measure(2, 2);
  parallel::set_num_threads(1);
  sim::StatevectorSimulator s1(7);
  const auto r1 = s1.run(qc, 600);
  parallel::set_num_threads(4);
  sim::StatevectorSimulator s4(7);
  const auto r4 = s4.run(qc, 600);
  EXPECT_EQ(r1.counts.histogram, r4.counts.histogram);
  // Last shot's state is pinned to the shot index, not the thread schedule.
  EXPECT_EQ(r1.statevector, r4.statevector);
}

TEST(Determinism, PerShotPathRepeatsForSameSeed) {
  ThreadCountGuard guard;
  parallel::set_num_threads(4);
  QuantumCircuit qc(2, 2);
  qc.h(0);
  qc.measure(0, 0);
  qc.x(1).c_if(0, 1);
  qc.measure(1, 1);
  sim::StatevectorSimulator a(99), b(99);
  EXPECT_EQ(a.run(qc, 400).counts.histogram, b.run(qc, 400).counts.histogram);
}

TEST(Determinism, UnitarySimulatorThreadInvariant) {
  ThreadCountGuard guard;
  Rng rng(8);
  QuantumCircuit qc(6);
  for (int g = 0; g < 30; ++g) {
    const int q = static_cast<int>(rng.index(6));
    const int q2 = (q + 1 + static_cast<int>(rng.index(5))) % 6;
    if (rng.index(2))
      qc.u(rng.uniform(0, PI), rng.uniform(-PI, PI), rng.uniform(-PI, PI), q);
    else
      qc.cx(q, q2);
  }
  parallel::set_num_threads(1);
  const Matrix u1 = sim::UnitarySimulator().unitary(qc);
  parallel::set_num_threads(4);
  const Matrix u4 = sim::UnitarySimulator().unitary(qc);
  EXPECT_EQ(u1.data(), u4.data());
}

}  // namespace
}  // namespace qtc
