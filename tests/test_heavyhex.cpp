// Heavy-hex scaling and directed calibration: the topology generators must
// reproduce the published Eagle/Osprey/Condor device sizes, calibration
// lookups must be direction-exact and O(1) even at 1121 qubits (the bug this
// PR fixes was an O(E) scan that returned the first orientation it found),
// the QTC_MAP_SEED/QTC_MAP_FIDELITY knobs must parse robustly, and the
// fidelity-aware SABRE portfolio must (a) be bitwise-identical to the legacy
// mapper when off and (b) beat it on estimated success when on. ECR-basis
// backends are checked end-to-end: transpiled circuits are native and
// statevector-equivalent, and they run through Backend::run and the
// execution service.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "arch/backend.hpp"
#include "arch/coupling_map.hpp"
#include "core/gates.hpp"
#include "core/matrix.hpp"
#include "core/rng.hpp"
#include "exec/execute.hpp"
#include "map/mapping.hpp"
#include "map/noise_aware.hpp"
#include "qbin/qbin.hpp"
#include "service/execution_service.hpp"
#include "sim/simulator.hpp"
#include "transpiler/decompose.hpp"
#include "transpiler/direction.hpp"
#include "transpiler/transpile.hpp"

namespace qtc {
namespace {

struct ScopedEnv {
  ScopedEnv(const char* name, const char* value) : name_(name) {
    setenv(name, value, 1);
  }
  ~ScopedEnv() { unsetenv(name_); }
  const char* name_;
};

QuantumCircuit random_circuit(int n, int gates, std::uint64_t seed) {
  Rng rng(seed);
  QuantumCircuit qc(n);
  for (int g = 0; g < gates; ++g) {
    switch (rng.index(4)) {
      case 0:
        qc.h(static_cast<int>(rng.index(n)));
        break;
      case 1:
        qc.rz(rng.uniform(-PI, PI), static_cast<int>(rng.index(n)));
        break;
      default: {
        const int a = static_cast<int>(rng.index(n));
        const int b = (a + 1 + static_cast<int>(rng.index(n - 1))) % n;
        qc.cx(a, b);
      }
    }
  }
  return qc;
}

// --- topology ----------------------------------------------------------------

struct HeavyHexCase {
  int distance;
  int qubits;
};

class HeavyHexTopology : public ::testing::TestWithParam<HeavyHexCase> {};

TEST_P(HeavyHexTopology, MatchesPublishedDeviceShape) {
  const auto [d, expected_qubits] = GetParam();
  const arch::CouplingMap cm = arch::heavy_hex(d);

  // Closed form n(d) = (5 d^2 + 2 d - 5) / 2 and the coupler count that
  // falls out of the row/bridge construction.
  EXPECT_EQ(cm.num_qubits(), expected_qubits);
  EXPECT_EQ(cm.num_qubits(), (5 * d * d + 2 * d - 5) / 2);
  const int w = 2 * d + 1;
  const int expected_edges =
      2 * (w - 2) + (d - 2) * (w - 1) + (d - 1) * ((d + 1) / 2) * 2;
  EXPECT_EQ(static_cast<int>(cm.edges().size()), expected_edges);

  // Heavy-hex means degree <= 3 everywhere, and one connected patch.
  for (int q = 0; q < cm.num_qubits(); ++q)
    EXPECT_LE(cm.neighbors(q).size(), 3u) << "qubit " << q;
  EXPECT_TRUE(cm.is_connected());

  // Each coupler appears in exactly one calibrated orientation, and the
  // edge-index table agrees with edges() in both directions.
  for (std::size_t i = 0; i < cm.edges().size(); ++i) {
    const auto [a, b] = cm.edges()[i];
    EXPECT_EQ(cm.edge_index(a, b), static_cast<int>(i));
    EXPECT_EQ(cm.edge_index(b, a), -1);
    EXPECT_TRUE(cm.has_edge(a, b));
    EXPECT_FALSE(cm.has_edge(b, a));
    EXPECT_TRUE(cm.connected(b, a));
  }

  // Distance is symmetric (sampled; the full matrix is n^2 at 1121 qubits).
  Rng rng(17);
  for (int k = 0; k < 500; ++k) {
    const int a = static_cast<int>(rng.index(cm.num_qubits()));
    const int b = static_cast<int>(rng.index(cm.num_qubits()));
    EXPECT_EQ(cm.distance(a, b), cm.distance(b, a));
  }
}

INSTANTIATE_TEST_SUITE_P(
    EagleOspreyCondor, HeavyHexTopology,
    ::testing::Values(HeavyHexCase{3, 23}, HeavyHexCase{5, 65},
                      HeavyHexCase{7, 127}, HeavyHexCase{13, 433},
                      HeavyHexCase{21, 1121}),
    [](const auto& info) { return "d" + std::to_string(info.param.distance); });

TEST(HeavyHexTopology, EagleHasTheIbmWashingtonEdgeCount) {
  EXPECT_EQ(arch::heavy_hex(7).edges().size(), 144u);
}

TEST(HeavyHexTopology, RejectsEvenOrTinyDistances) {
  EXPECT_THROW(arch::heavy_hex(1), std::invalid_argument);
  EXPECT_THROW(arch::heavy_hex(4), std::invalid_argument);
  EXPECT_THROW(arch::heavy_hex(0), std::invalid_argument);
}

TEST(CouplingMapDisconnected, ReportsSentinelDistances) {
  const arch::CouplingMap cm(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(cm.is_connected());
  EXPECT_EQ(cm.distance(0, 1), 1);
  // Unreachable pairs report num_qubits() — larger than any real path.
  EXPECT_EQ(cm.distance(0, 2), 4);
  EXPECT_EQ(cm.distance(2, 0), 4);
  EXPECT_EQ(cm.distance(1, 3), 4);
  EXPECT_EQ(cm.edge_index(0, 2), -1);
}

// --- directed calibration lookups (the bugfix) -------------------------------

arch::Calibration tiny_calibration(int qubits, std::vector<double> cx_error,
                                   std::vector<double> cx_duration = {}) {
  arch::Calibration cal;
  for (int q = 0; q < qubits; ++q) {
    cal.single_qubit_error.push_back(1e-3);
    cal.readout_error.push_back(0.02);
    cal.t1_us.push_back(50.0);
    cal.t2_us.push_back(40.0);
  }
  cal.cx_error = std::move(cx_error);
  cal.cx_duration_us = std::move(cx_duration);
  return cal;
}

TEST(DirectedCalibration, LookupIsDirectionExact) {
  // Both orientations of the coupler are distinct calibrated edges. The old
  // lookup scanned edges() and returned the first match in either direction,
  // so cx_error(1, 0) came back 0.01 — this pins the fix.
  const arch::CouplingMap cm(2, {{0, 1}, {1, 0}});
  const arch::Backend b(cm, tiny_calibration(2, {0.01, 0.02}, {0.3, 0.5}));
  EXPECT_DOUBLE_EQ(b.cx_error(0, 1), 0.01);
  EXPECT_DOUBLE_EQ(b.cx_error(1, 0), 0.02);
  EXPECT_DOUBLE_EQ(b.cx_duration(0, 1), 0.3);
  EXPECT_DOUBLE_EQ(b.cx_duration(1, 0), 0.5);
}

TEST(DirectedCalibration, UndirectedCouplerFallsBackToReverseEntry) {
  const arch::CouplingMap cm(2, {{0, 1}});
  const arch::Backend b(cm, tiny_calibration(2, {0.03}));
  EXPECT_DOUBLE_EQ(b.cx_error(0, 1), 0.03);
  EXPECT_DOUBLE_EQ(b.cx_error(1, 0), 0.03);
  // No per-edge durations: the uniform gate time applies.
  EXPECT_DOUBLE_EQ(b.cx_duration(1, 0), b.calibration().gate_time_cx_us);
}

TEST(DirectedCalibration, UncoupledPairThrows) {
  const arch::CouplingMap cm(3, {{0, 1}});
  const arch::Backend b(cm, tiny_calibration(3, {0.03}));
  EXPECT_THROW(b.cx_error(0, 2), std::invalid_argument);
  EXPECT_THROW(b.cx_duration(2, 0), std::invalid_argument);
}

TEST(DirectedCalibration, LookupIsO1AtCondorScale) {
  // Per-lookup cost on the 1121-qubit Condor map vs the 23-qubit patch.
  // O(1) table lookups keep the ratio near 1 (cache effects aside); the old
  // O(E) scan would scale with the edge count (1320 vs 24 edges, ~55x).
  const arch::Backend small(arch::heavy_hex(3),
                            arch::heavy_hex_calibration(arch::heavy_hex(3)));
  const arch::Backend big = arch::heavy_hex_backend(21);

  auto per_lookup_ns = [](const arch::Backend& b, int reps) {
    const auto& edges = b.coupling_map().edges();
    double best = 1e300;
    double sink = 0;
    for (int round = 0; round < 3; ++round) {
      const auto t0 = std::chrono::steady_clock::now();
      double acc = 0;
      for (int r = 0; r < reps; ++r)
        for (const auto& [a, c] : edges) acc += b.cx_error(c, a);
      const auto t1 = std::chrono::steady_clock::now();
      sink += acc;
      const double ns =
          std::chrono::duration<double, std::nano>(t1 - t0).count() /
          (static_cast<double>(reps) * edges.size());
      best = std::min(best, ns);
    }
    EXPECT_GT(sink, 0.0);  // keep the loop observable
    return best;
  };

  // ~200k lookups per map so both timings are milliseconds-scale.
  const double small_ns = per_lookup_ns(small, 8000);
  const double big_ns = per_lookup_ns(big, 150);
  EXPECT_LT(big_ns, small_ns * 20.0)
      << "per-lookup " << big_ns << "ns at 1121q vs " << small_ns
      << "ns at 23q: calibration lookup is not O(1)";
}

TEST(HeavyHexBackend, SynthesizedCalibrationCoversEveryEdgeWithContrast) {
  const arch::Backend b = arch::heavy_hex_backend(7);
  EXPECT_EQ(b.num_qubits(), 127);
  EXPECT_EQ(b.basis(), arch::BasisSet::EcrRzSx);
  const auto& cal = b.calibration();
  ASSERT_EQ(cal.cx_error.size(), b.coupling_map().edges().size());
  ASSERT_EQ(cal.cx_duration_us.size(), b.coupling_map().edges().size());
  double lo = 1.0, hi = 0.0;
  for (double e : cal.cx_error) {
    EXPECT_GT(e, 0.0);
    EXPECT_LT(e, 0.5);
    lo = std::min(lo, e);
    hi = std::max(hi, e);
  }
  // A realistic device spans about a decade of 2q error; that contrast is
  // what makes fidelity-aware routing measurable.
  EXPECT_GT(hi / lo, 5.0);
  // Deterministic synthesis: same distance, same numbers.
  const arch::Backend again = arch::heavy_hex_backend(7);
  EXPECT_EQ(cal.cx_error, again.calibration().cx_error);
}

// --- estimated_success on 3+-qubit gates (bugfix) ----------------------------

TEST(EstimatedSuccess, ThreeQubitGateScoresConstituentPairs) {
  const arch::CouplingMap cm = arch::linear(3);
  const arch::Backend b(cm, arch::default_calibration(cm));
  QuantumCircuit qc(3);
  qc.ccx(0, 1, 2);
  double worst = 0.0;
  for (double e : b.calibration().cx_error) worst = std::max(worst, e);
  // Pairs in order: (0,1) coupled, (0,2) uncoupled -> worst, (1,2) coupled.
  double expected = 1.0;
  expected *= 1.0 - b.cx_error(0, 1);
  expected *= 1.0 - worst;
  expected *= 1.0 - b.cx_error(1, 2);
  const double got = map::estimated_success(qc, b);
  EXPECT_NEAR(got, expected, 1e-12);
  EXPECT_GT(got, 0.0);
  EXPECT_LT(got, 1.0);
}

// --- environment knobs -------------------------------------------------------

TEST(MapKnobs, SeedParsesDecimalHexAndFallsBackOnGarbage) {
  {
    ScopedEnv env("QTC_MAP_SEED", "123");
    EXPECT_EQ(map::default_map_seed(), 123u);
  }
  {
    ScopedEnv env("QTC_MAP_SEED", "0x2A");
    EXPECT_EQ(map::default_map_seed(), 42u);
  }
  {
    // Trailing garbage used to be silently accepted as the parsed prefix;
    // now the whole value must parse or the default applies.
    ScopedEnv env("QTC_MAP_SEED", "12abc");
    EXPECT_EQ(map::default_map_seed(), 0xC0FFEEu);
  }
  {
    ScopedEnv env("QTC_MAP_SEED", "garbage");
    EXPECT_EQ(map::default_map_seed(), 0xC0FFEEu);
  }
  {
    ScopedEnv env("QTC_MAP_SEED", "");
    EXPECT_EQ(map::default_map_seed(), 0xC0FFEEu);
  }
  EXPECT_EQ(map::default_map_seed(), 0xC0FFEEu);  // unset
}

TEST(MapKnobs, FidelityKnobDefaultsOffAndParsesLikeOtherBoolKnobs) {
  EXPECT_FALSE(map::default_map_fidelity());  // unset
  for (const char* off : {"0", "off", "false", "no"}) {
    ScopedEnv env("QTC_MAP_FIDELITY", off);
    EXPECT_FALSE(map::default_map_fidelity()) << off;
  }
  for (const char* on : {"1", "on", "true", "yes"}) {
    ScopedEnv env("QTC_MAP_FIDELITY", on);
    EXPECT_TRUE(map::default_map_fidelity()) << on;
  }
}

// --- fidelity-aware SABRE ----------------------------------------------------

TEST(FidelitySabre, OffPathIsBitwiseIdenticalToLegacyMapper) {
  const arch::Backend b = arch::heavy_hex_backend(3);
  std::uint64_t seed = 500;
  for (int rep = 0; rep < 3; ++rep) {
    const QuantumCircuit qc = random_circuit(8, 32, ++seed);
    const map::SabreMapper plain(20, 0.5, 4, 11);
    map::SabreMapper off(20, 0.5, 4, 11);
    off.with_fidelity(&b, /*enabled=*/false);
    map::SabreMapper null_backend(20, 0.5, 4, 11);
    null_backend.with_fidelity(nullptr);
    const map::MappingResult want = plain.run(qc, b.coupling_map());
    EXPECT_EQ(off.run(qc, b.coupling_map()), want);
    EXPECT_EQ(null_backend.run(qc, b.coupling_map()), want);
  }
}

TEST(FidelitySabre, ExplicitFidelityZeroMatchesDefaultTranspile) {
  // With QTC_MAP_FIDELITY unset the resolved default is the legacy path, so
  // fidelity = 0 and the default must produce the identical circuit.
  const arch::Backend b = arch::qx5_backend();
  const QuantumCircuit qc = random_circuit(8, 40, 77);
  transpiler::TranspileOptions legacy;
  legacy.trials = 4;
  legacy.seed = 9;
  legacy.fidelity = 0;
  transpiler::TranspileOptions deferred = legacy;
  deferred.fidelity = -1;
  const auto r0 = transpiler::transpile(qc, b, legacy);
  const auto r1 = transpiler::transpile(qc, b, deferred);
  EXPECT_EQ(r0.circuit, r1.circuit);
  EXPECT_EQ(r0.swaps_inserted, r1.swaps_inserted);
  EXPECT_EQ(r0.best_trial, r1.best_trial);
}

TEST(FidelitySabre, RoutingStaysValidWithFidelityOn) {
  const arch::Backend b = arch::heavy_hex_backend(3);
  const QuantumCircuit qc = random_circuit(10, 40, 4242);
  map::SabreMapper mapper(20, 0.5, 4, 33);
  mapper.with_fidelity(&b);
  const map::MappingResult r = mapper.run(qc, b.coupling_map());
  EXPECT_TRUE(transpiler::satisfies_connectivity(r.circuit, b.coupling_map()));
  ASSERT_EQ(r.source_index.size(), r.circuit.ops().size());
  // Deterministic for a fixed seed, like the legacy portfolio.
  map::SabreMapper mapper2(20, 0.5, 4, 33);
  mapper2.with_fidelity(&b);
  EXPECT_EQ(mapper2.run(qc, b.coupling_map()), r);
}

TEST(FidelitySabre, BeatsCalibrationBlindRoutingOnEagle) {
  // The PR's acceptance bar: on the 127-qubit heavy-hex backend the
  // fidelity-aware portfolio must achieve strictly higher estimated success
  // than the calibration-blind one over the benchmark suite (aggregated in
  // log space so one circuit cannot mask another).
  const arch::Backend eagle = arch::heavy_hex_backend(7);
  double log_blind = 0.0, log_aware = 0.0;
  std::uint64_t seed = 9000;
  for (int rep = 0; rep < 5; ++rep) {
    const int n = 8 + 2 * rep;
    const QuantumCircuit qc = random_circuit(n, 5 * n, ++seed);
    transpiler::TranspileOptions opts;
    opts.trials = 4;
    opts.seed = 21;
    opts.fidelity = 0;
    const auto blind = transpiler::transpile(qc, eagle, opts);
    opts.fidelity = 1;
    const auto aware = transpiler::transpile(qc, eagle, opts);
    log_blind += std::log(map::estimated_success(blind.circuit, eagle));
    log_aware += std::log(map::estimated_success(aware.circuit, eagle));
  }
  EXPECT_GT(log_aware, log_blind);
}

// --- ECR basis end-to-end ----------------------------------------------------

TEST(EcrGate, MatrixIsUnitaryHermitianAndSelfInverse) {
  const Matrix m = op_matrix(OpKind::ECR);
  EXPECT_TRUE(m.is_unitary(1e-12));
  EXPECT_TRUE((m * m).approx_equal(Matrix::identity(4), 1e-12));
  const auto [inv_kind, inv_params] = op_inverse(OpKind::ECR, {});
  EXPECT_EQ(inv_kind, OpKind::ECR);
  EXPECT_TRUE(inv_params.empty());
  EXPECT_STREQ(op_name(OpKind::ECR), "ecr");
  EXPECT_EQ(op_from_name("ecr"), OpKind::ECR);
  EXPECT_EQ(op_num_qubits(OpKind::ECR), 2);
}

TEST(EcrGate, DecompositionAndRewriteAreEquivalentUpToPhase) {
  sim::StatevectorSimulator sim;
  {
    // Native ECR vs its {1q, CX} decomposition.
    QuantumCircuit native(2);
    native.h(0).h(1).ecr(0, 1);
    const QuantumCircuit lowered =
        transpiler::DecomposeMultiQubit().run(native);
    for (const auto& op : lowered.ops()) EXPECT_NE(op.kind, OpKind::ECR);
    EXPECT_TRUE(states_equal_up_to_phase(
        sim.statevector(native).amplitudes(),
        sim.statevector(lowered).amplitudes(), 1e-10));
  }
  {
    // CX circuit vs its ECR-basis rewrite.
    QuantumCircuit cx(2);
    cx.h(0).cx(0, 1).rz(0.7, 1).cx(0, 1);
    const QuantumCircuit ecr = transpiler::RewriteToEcrBasis().run(cx);
    bool saw_ecr = false;
    for (const auto& op : ecr.ops()) {
      EXPECT_NE(op.kind, OpKind::CX);
      saw_ecr |= op.kind == OpKind::ECR;
    }
    EXPECT_TRUE(saw_ecr);
    EXPECT_TRUE(states_equal_up_to_phase(
        sim.statevector(cx).amplitudes(),
        sim.statevector(ecr).amplitudes(), 1e-10));
  }
}

TEST(EcrGate, SurvivesQbinRoundtrip) {
  QuantumCircuit qc(3, 3);
  qc.h(0).ecr(0, 1).rz(0.25, 1).ecr(1, 2).sx(2);
  qc.measure_all();
  EXPECT_EQ(qbin::decode(qbin::encode(qc)), qc);
}

TEST(EcrBackend, TranspiledCircuitsAreNativeAndEquivalent) {
  const arch::CouplingMap cm = arch::ibm_qx4();
  const arch::Backend b(cm, arch::default_calibration(cm),
                        arch::BasisSet::EcrRzSx);
  sim::StatevectorSimulator sim;
  std::uint64_t seed = 300;
  for (int rep = 0; rep < 4; ++rep) {
    const QuantumCircuit qc = random_circuit(5, 20, ++seed);
    transpiler::TranspileOptions opts;
    opts.trials = 2;
    opts.seed = 3;
    const auto r = transpiler::transpile(qc, b, opts);
    bool saw_ecr = false;
    for (const auto& op : r.circuit.ops()) {
      EXPECT_TRUE(b.is_basis_gate(op.kind))
          << "non-native gate in output: " << op_name(op.kind);
      saw_ecr |= op.kind == OpKind::ECR;
    }
    EXPECT_TRUE(saw_ecr);
    const auto mapped_sv = sim.statevector(r.circuit).amplitudes();
    const auto logical_sv = sim.statevector(qc).amplitudes();
    const auto expected =
        map::embed_state(logical_sv, r.final_layout, cm.num_qubits());
    EXPECT_TRUE(states_equal_up_to_phase(mapped_sv, expected, 1e-8));
  }
}

TEST(EcrBackend, RunsThroughBackendRunAndExecutionService) {
  const arch::CouplingMap cm = arch::ibm_qx4();
  const arch::Backend b(cm, arch::default_calibration(cm),
                        arch::BasisSet::EcrRzSx);
  QuantumCircuit qc(3, 3);
  qc.h(0).cx(0, 1).cx(1, 2).measure_all();

  arch::Backend::RunOptions run_opts;
  run_opts.shots = 256;
  run_opts.seed = 5;
  const sim::Counts direct = b.run(qc, run_opts);
  EXPECT_EQ(direct.shots, 256);
  int total = 0;
  for (const auto& [bits, count] : direct.histogram) total += count;
  EXPECT_EQ(total, 256);

  service::ServiceConfig cfg;
  cfg.workers = 2;
  service::ExecutionService svc(cfg);
  exec::ExecuteOptions exec_opts;
  exec_opts.shots = 256;
  exec_opts.seed = 5;
  const service::JobResult jr = svc.submit(qc, b, exec_opts).result();
  ASSERT_EQ(jr.state, service::JobState::Done) << jr.error;
  EXPECT_EQ(jr.counts.shots, direct.shots);
  EXPECT_EQ(jr.counts.histogram, direct.histogram);
}

}  // namespace
}  // namespace qtc
