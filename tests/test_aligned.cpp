// The aligned amplitude storage contract: the allocator hands out 64-byte
// aligned blocks, Statevector's amplitude array actually lives on such a
// block, and the vector keeps full std::vector value semantics (move steals
// the pointer, copy round-trips) so no caller behavior changed with the
// switch from plain std::vector.

#include <gtest/gtest.h>

#include <complex>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/aligned.hpp"
#include "sim/statevector.hpp"

namespace qtc {
namespace {

bool aligned64(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % 64 == 0;
}

TEST(AlignedAllocator, HandsOut64ByteAlignedBlocks) {
  AlignedAllocator<cplx, 64> alloc;
  // Odd sizes are the interesting case: the underlying operator new gets
  // requests that are not multiples of the alignment.
  for (std::size_t n : {1u, 3u, 7u, 64u, 1000u}) {
    cplx* p = alloc.allocate(n);
    EXPECT_TRUE(aligned64(p)) << "n=" << n;
    alloc.deallocate(p, n);
  }
}

TEST(AlignedAllocator, VectorDataIsAlignedAcrossGrowth) {
  aligned_vector<cplx> v;
  for (int i = 0; i < 1000; ++i) {
    v.push_back(cplx(i, -i));
    ASSERT_TRUE(aligned64(v.data()));
  }
}

TEST(AlignedAllocator, AllInstancesCompareEqual) {
  AlignedAllocator<cplx, 64> a, b;
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a != b);
}

TEST(Aligned, StatevectorAmplitudesAreAligned) {
  for (int n = 0; n <= 12; n += 3) {
    sim::Statevector sv(n);
    EXPECT_TRUE(aligned64(sv.amplitudes().data())) << "n=" << n;
  }
}

TEST(Aligned, MoveStealsTheBufferAndStaysAligned) {
  sim::AmpVector amps(8, cplx{0, 0});
  amps[3] = cplx(0.5, -0.25);
  const cplx* buffer = amps.data();
  sim::Statevector sv(std::move(amps));  // adopting ctor: no copy
  EXPECT_EQ(sv.amplitudes().data(), buffer);
  EXPECT_EQ(sv.amplitude(3), cplx(0.5, -0.25));

  sim::Statevector moved(std::move(sv));
  EXPECT_EQ(moved.amplitudes().data(), buffer);
  EXPECT_EQ(moved.amplitude(3), cplx(0.5, -0.25));
}

TEST(Aligned, PlainVectorOverloadRoundTrips) {
  // The copying convenience ctor must preserve values exactly and yield an
  // aligned buffer of its own.
  std::vector<cplx> plain{{1, 0}, {0, 0}, {0, -1}, {0.5, 0.5}};
  sim::Statevector sv(plain);
  ASSERT_EQ(sv.dim(), plain.size());
  EXPECT_TRUE(aligned64(sv.amplitudes().data()));
  for (std::size_t i = 0; i < plain.size(); ++i)
    EXPECT_EQ(sv.amplitude(i), plain[i]);

  // ...and back out through amplitudes() into a plain vector.
  std::vector<cplx> out(sv.amplitudes().begin(), sv.amplitudes().end());
  EXPECT_EQ(out, plain);
}

TEST(Aligned, CopiedStatevectorIsIndependent) {
  sim::Statevector a(3);
  QuantumCircuit qc(3);
  qc.h(0).cx(0, 1).t(2);
  a.apply_circuit(qc);
  const sim::AmpVector before = a.amplitudes();
  sim::Statevector b = a;
  ASSERT_NE(a.amplitudes().data(), b.amplitudes().data());
  EXPECT_TRUE(aligned64(b.amplitudes().data()));
  b.apply_1q(cplx(0, 1), {0, 0}, {0, 0}, cplx(0, -1), 0);  // mutate the copy
  EXPECT_EQ(a.amplitudes(), before);
  EXPECT_NE(b.amplitudes(), before);
}

}  // namespace
}  // namespace qtc
