#include "core/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"

namespace qtc {
namespace {

TEST(Matrix, IdentityHasOnesOnDiagonal) {
  const Matrix id = Matrix::identity(4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_EQ(id(i, j), (i == j ? cplx{1, 0} : cplx{0, 0}));
}

TEST(Matrix, InitializerListRejectsRaggedRows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, MultiplyAgainstHandComputed) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a * b;
  EXPECT_EQ(c(0, 0), cplx(19, 0));
  EXPECT_EQ(c(0, 1), cplx(22, 0));
  EXPECT_EQ(c(1, 0), cplx(43, 0));
  EXPECT_EQ(c(1, 1), cplx(50, 0));
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  const Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, MatVecMatchesMatMul) {
  const Matrix a{{1, cplx(0, 1)}, {2, -1}};
  const std::vector<cplx> v{cplx(1, 1), cplx(0, -2)};
  const auto got = a * v;
  EXPECT_NEAR(std::abs(got[0] - (cplx(1, 1) + cplx(0, 1) * cplx(0, -2))), 0,
              1e-12);
  EXPECT_NEAR(std::abs(got[1] - (cplx(2, 2) - cplx(0, -2))), 0, 1e-12);
}

TEST(Matrix, KroneckerProductShapeAndValues) {
  const Matrix x{{0, 1}, {1, 0}};
  const Matrix z{{1, 0}, {0, -1}};
  const Matrix k = x.kron(z);
  ASSERT_EQ(k.rows(), 4u);
  ASSERT_EQ(k.cols(), 4u);
  EXPECT_EQ(k(0, 2), cplx(1, 0));
  EXPECT_EQ(k(1, 3), cplx(-1, 0));
  EXPECT_EQ(k(2, 0), cplx(1, 0));
  EXPECT_EQ(k(3, 1), cplx(-1, 0));
  EXPECT_EQ(k(0, 0), cplx(0, 0));
}

TEST(Matrix, DaggerConjugatesAndTransposes) {
  const Matrix m{{cplx(1, 2), cplx(3, -4)}, {cplx(0, 1), cplx(5, 0)}};
  const Matrix d = m.dagger();
  EXPECT_EQ(d(0, 0), cplx(1, -2));
  EXPECT_EQ(d(0, 1), cplx(0, -1));
  EXPECT_EQ(d(1, 0), cplx(3, 4));
}

TEST(Matrix, TraceSumsDiagonal) {
  const Matrix m{{1, 9}, {9, cplx(2, 3)}};
  EXPECT_EQ(m.trace(), cplx(3, 3));
}

TEST(Matrix, UnitaryDetection) {
  const Matrix h{{SQRT1_2, SQRT1_2}, {SQRT1_2, -SQRT1_2}};
  EXPECT_TRUE(h.is_unitary());
  const Matrix notu{{1, 1}, {0, 1}};
  EXPECT_FALSE(notu.is_unitary());
}

TEST(Matrix, HermitianDetection) {
  const Matrix herm{{2, cplx(1, 1)}, {cplx(1, -1), 3}};
  EXPECT_TRUE(herm.is_hermitian());
  EXPECT_FALSE(Matrix({{0, 1}, {0, 0}}).is_hermitian());
}

TEST(Matrix, EqualUpToPhase) {
  const Matrix h{{SQRT1_2, SQRT1_2}, {SQRT1_2, -SQRT1_2}};
  const cplx phase = std::exp(cplx(0, 0.7));
  EXPECT_TRUE(h.equal_up_to_phase(h * phase));
  EXPECT_FALSE(h.equal_up_to_phase(Matrix{{0, 1}, {1, 0}}));
}

TEST(Matrix, SolveLinearRecoversKnownSolution) {
  // x + 2y = 5 ; 3x - y = 1  =>  x = 1, y = 2
  const auto x = solve_linear({{1, 2}, {3, -1}}, {5, 1});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Matrix, SolveLinearSingularThrows) {
  EXPECT_THROW(solve_linear({{1, 2}, {2, 4}}, {1, 2}), std::runtime_error);
}

TEST(Matrix, HermitianEigenvaluesOfPauliZ) {
  const auto ev = hermitian_eigenvalues(Matrix{{1, 0}, {0, -1}});
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_NEAR(ev[0], -1.0, 1e-9);
  EXPECT_NEAR(ev[1], 1.0, 1e-9);
}

TEST(Matrix, HermitianEigenvaluesOfPauliX) {
  const auto ev = hermitian_eigenvalues(Matrix{{0, 1}, {1, 0}});
  EXPECT_NEAR(ev[0], -1.0, 1e-9);
  EXPECT_NEAR(ev[1], 1.0, 1e-9);
}

TEST(Matrix, HermitianEigenvaluesComplexOffDiagonal) {
  // [[0, -i], [i, 0]] = Pauli Y, eigenvalues +-1.
  const Matrix y{{0, cplx(0, -1)}, {cplx(0, 1), 0}};
  const auto ev = hermitian_eigenvalues(y);
  EXPECT_NEAR(ev[0], -1.0, 1e-9);
  EXPECT_NEAR(ev[1], 1.0, 1e-9);
}

TEST(Matrix, HermitianEigenvaluesTraceInvariant) {
  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    Matrix m(4, 4);
    for (std::size_t i = 0; i < 4; ++i) {
      m(i, i) = rng.uniform(-2, 2);
      for (std::size_t j = i + 1; j < 4; ++j) {
        m(i, j) = cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
        m(j, i) = std::conj(m(i, j));
      }
    }
    const auto ev = hermitian_eigenvalues(m);
    double sum = 0;
    for (double e : ev) sum += e;
    EXPECT_NEAR(sum, m.trace().real(), 1e-8);
  }
}

TEST(Vector, InnerProductConjugatesLeft) {
  const std::vector<cplx> a{cplx(0, 1), 0};
  const std::vector<cplx> b{1, 0};
  EXPECT_NEAR(std::abs(inner(a, b) - cplx(0, -1)), 0, 1e-12);
}

TEST(Vector, StatesEqualUpToPhase) {
  std::vector<cplx> a{SQRT1_2, SQRT1_2};
  std::vector<cplx> b = a;
  for (auto& x : b) x *= std::exp(cplx(0, 1.3));
  EXPECT_TRUE(states_equal_up_to_phase(a, b));
  b[0] = -b[0];
  EXPECT_FALSE(states_equal_up_to_phase(a, b));
}

TEST(Vector, VecNormIsTheNormNotItsSquare) {
  // Pins the semantics after the rename from the misleading `norm2`: the
  // function returns sqrt(sum |v_i|^2), so a 3-4-5 triangle yields 5, not 25.
  EXPECT_DOUBLE_EQ(vec_norm(std::vector<cplx>{cplx(3, 0), cplx(0, 4)}), 5.0);
  EXPECT_DOUBLE_EQ(vec_norm(std::vector<cplx>{cplx(0, 0)}), 0.0);
  EXPECT_DOUBLE_EQ(vec_norm(std::vector<cplx>{SQRT1_2, SQRT1_2}), 1.0);
  // A normalized quantum state has vec_norm 1 (callers must not sqrt again).
  const std::vector<cplx> state{cplx(0.5, 0), cplx(0, 0.5), cplx(0.5, 0),
                                cplx(0, 0.5)};
  EXPECT_NEAR(vec_norm(state), 1.0, 1e-12);
}

TEST(Vector, KronAllOfTwoPaulis) {
  const Matrix x{{0, 1}, {1, 0}};
  const Matrix i2 = Matrix::identity(2);
  const Matrix m = kron_all({x, i2});
  EXPECT_TRUE(m.approx_equal(x.kron(i2)));
}

}  // namespace
}  // namespace qtc
