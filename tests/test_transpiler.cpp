#include "transpiler/decompose.hpp"
#include "transpiler/direction.hpp"
#include "transpiler/optimize.hpp"
#include "transpiler/pass_manager.hpp"
#include "transpiler/transpile.hpp"
#include "transpiler/transpile_cache.hpp"

#include <gtest/gtest.h>

#include "arch/backend.hpp"
#include "core/rng.hpp"
#include "exec/execute.hpp"
#include "sim/simulator.hpp"

namespace qtc::transpiler {
namespace {

Matrix unitary_of(const QuantumCircuit& qc) {
  return sim::UnitarySimulator().unitary(qc);
}

void expect_equivalent(const QuantumCircuit& a, const QuantumCircuit& b) {
  EXPECT_TRUE(unitary_of(a).equal_up_to_phase(unitary_of(b), 1e-8));
}

// --- decomposition -----------------------------------------------------------

class DecompositionTest : public ::testing::TestWithParam<OpKind> {};

TEST_P(DecompositionTest, PreservesUnitaryAndReachesBasis) {
  const OpKind kind = GetParam();
  const int nq = op_num_qubits(kind);
  std::vector<double> params;
  Rng rng(3);
  for (int p = 0; p < op_num_params(kind); ++p)
    params.push_back(rng.uniform(-PI, PI));
  QuantumCircuit qc(nq);
  std::vector<Qubit> qubits;
  for (int q = 0; q < nq; ++q) qubits.push_back(q);
  qc.gate(kind, qubits, params);
  const QuantumCircuit low = DecomposeMultiQubit().run(qc);
  expect_equivalent(qc, low);
  for (const auto& op : low.ops())
    EXPECT_LE(op.qubits.size(), op.kind == OpKind::CX ? 2u : 1u)
        << op_name(op.kind);
}

INSTANTIATE_TEST_SUITE_P(
    MultiQubitGates, DecompositionTest,
    ::testing::Values(OpKind::CZ, OpKind::CY, OpKind::CH, OpKind::CRX,
                      OpKind::CRY, OpKind::CRZ, OpKind::CP, OpKind::CU,
                      OpKind::SWAP, OpKind::ISWAP, OpKind::RZZ, OpKind::RXX,
                      OpKind::CCX, OpKind::CSWAP),
    [](const auto& info) { return op_name(info.param); });

TEST(Decompose, ToffoliUsesCliffordTOnly) {
  QuantumCircuit qc(3);
  qc.ccx(0, 1, 2);
  const QuantumCircuit low = DecomposeMultiQubit().run(qc);
  EXPECT_EQ(low.count(OpKind::CX), 6);
  for (const auto& op : low.ops()) {
    const bool ok = op.kind == OpKind::CX || op.kind == OpKind::H ||
                    op.kind == OpKind::T || op.kind == OpKind::Tdg;
    EXPECT_TRUE(ok) << op_name(op.kind);
  }
}

TEST(Decompose, ConditionPropagatesToAllPieces) {
  QuantumCircuit qc(2, 1);
  qc.measure(0, 0);
  qc.swap(0, 1).c_if(0, 1);
  const QuantumCircuit low = DecomposeMultiQubit().run(qc);
  int conditioned = 0;
  for (const auto& op : low.ops())
    if (op.conditioned()) ++conditioned;
  EXPECT_EQ(conditioned, 3);  // three CXs from the swap
}

TEST(Decompose, RewriteToUBasisProducesBasisGates) {
  QuantumCircuit qc(2);
  qc.h(0).t(1).sdg(0).rx(0.7, 1).cx(0, 1).z(1);
  const QuantumCircuit basis =
      RewriteToUBasis().run(DecomposeMultiQubit().run(qc));
  for (const auto& op : basis.ops()) {
    const bool ok = op.kind == OpKind::U || op.kind == OpKind::P ||
                    op.kind == OpKind::U2 || op.kind == OpKind::CX ||
                    op.kind == OpKind::I;
    EXPECT_TRUE(ok) << op_name(op.kind);
  }
  expect_equivalent(qc, basis);
}

TEST(Decompose, RewriteToUBasisRejectsUndcomposedGates) {
  QuantumCircuit qc(2);
  qc.swap(0, 1);
  EXPECT_THROW(RewriteToUBasis().run(qc), std::invalid_argument);
}

// --- cancellation / fusion ----------------------------------------------------

TEST(Cancel, AdjacentSelfInversePairsVanish) {
  QuantumCircuit qc(2);
  qc.h(0).h(0).x(1).x(1).cx(0, 1).cx(0, 1);
  const QuantumCircuit opt = GateCancellation().run(qc);
  EXPECT_EQ(opt.size(), 0u);
}

TEST(Cancel, TTdgPairVanishes) {
  QuantumCircuit qc(1);
  qc.t(0).tdg(0);
  EXPECT_EQ(GateCancellation().run(qc).size(), 0u);
}

TEST(Cancel, InterveningGateBlocksCancellation) {
  QuantumCircuit qc(1);
  qc.h(0).t(0).h(0);
  EXPECT_EQ(GateCancellation().run(qc).size(), 3u);
}

TEST(Cancel, SpectatorQubitDoesNotBlock) {
  QuantumCircuit qc(2);
  qc.h(0).x(1).h(0);
  const QuantumCircuit opt = GateCancellation().run(qc);
  EXPECT_EQ(opt.size(), 1u);
  EXPECT_EQ(opt.ops()[0].kind, OpKind::X);
}

TEST(Cancel, CxDirectionMattersForCancellation) {
  QuantumCircuit qc(2);
  qc.cx(0, 1).cx(1, 0);
  EXPECT_EQ(GateCancellation().run(qc).size(), 2u);
}

TEST(Cancel, SwapIsOrientationInsensitive) {
  QuantumCircuit qc(2);
  qc.swap(0, 1).swap(1, 0);
  EXPECT_EQ(GateCancellation().run(qc).size(), 0u);
}

TEST(Cancel, RotationsMerge) {
  QuantumCircuit qc(1);
  qc.rz(0.3, 0).rz(0.4, 0);
  const QuantumCircuit opt = GateCancellation().run(qc);
  ASSERT_EQ(opt.size(), 1u);
  EXPECT_NEAR(opt.ops()[0].params[0], 0.7, 1e-12);
}

TEST(Cancel, OppositeRotationsVanish) {
  QuantumCircuit qc(1);
  qc.rx(0.5, 0).rx(-0.5, 0);
  EXPECT_EQ(GateCancellation().run(qc).size(), 0u);
}

TEST(Cancel, CascadeAfterInnerCancellation) {
  // h t tdg h -> h h -> empty (requires the fixed point loop).
  QuantumCircuit qc(1);
  qc.h(0).t(0).tdg(0).h(0);
  EXPECT_EQ(GateCancellation().run(qc).size(), 0u);
}

TEST(Cancel, ConditionedOpsAreLeftAlone) {
  QuantumCircuit qc(1, 1);
  qc.measure(0, 0);
  qc.x(0).c_if(0, 1);
  qc.x(0).c_if(0, 1);
  EXPECT_EQ(GateCancellation().run(qc).size(), 3u);
}

TEST(Cancel, MeasurementBlocksCancellation) {
  QuantumCircuit qc(1, 1);
  qc.h(0);
  qc.measure(0, 0);
  qc.h(0);
  EXPECT_EQ(GateCancellation().run(qc).size(), 3u);
}

TEST(Fuse, RunOfOneQubitGatesBecomesSingleU) {
  QuantumCircuit qc(1);
  qc.h(0).t(0).h(0).s(0).rx(0.3, 0);
  const QuantumCircuit fused = FuseSingleQubitGates().run(qc);
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_EQ(fused.ops()[0].kind, OpKind::U);
  expect_equivalent(qc, fused);
}

TEST(Fuse, IdentityRunDisappears) {
  QuantumCircuit qc(1);
  qc.h(0).h(0);
  EXPECT_EQ(FuseSingleQubitGates().run(qc).size(), 0u);
}

TEST(Fuse, SingleGateRunsAreKeptVerbatim) {
  QuantumCircuit qc(2);
  qc.h(0).cx(0, 1).t(1);
  const QuantumCircuit fused = FuseSingleQubitGates().run(qc);
  EXPECT_EQ(fused.count(OpKind::H), 1);
  EXPECT_EQ(fused.count(OpKind::T), 1);
}

TEST(Fuse, TwoQubitGateSplitsRuns) {
  QuantumCircuit qc(2);
  qc.h(0).t(0).cx(0, 1).h(0).s(0);
  const QuantumCircuit fused = FuseSingleQubitGates().run(qc);
  EXPECT_EQ(fused.count(OpKind::U), 2);
  EXPECT_EQ(fused.count(OpKind::CX), 1);
  expect_equivalent(qc, fused);
}

TEST(Fuse, PreservesRandomCircuits) {
  Rng rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    QuantumCircuit qc(3);
    for (int g = 0; g < 30; ++g) {
      const int q = static_cast<int>(rng.index(3));
      switch (rng.index(5)) {
        case 0:
          qc.h(q);
          break;
        case 1:
          qc.rz(rng.uniform(-PI, PI), q);
          break;
        case 2:
          qc.sx(q);
          break;
        case 3:
          qc.t(q);
          break;
        default:
          qc.cx(q, (q + 1) % 3);
      }
    }
    expect_equivalent(qc, FuseSingleQubitGates().run(qc));
  }
}

// --- direction fixing ----------------------------------------------------------

TEST(Direction, NativeOrientationUntouched) {
  QuantumCircuit qc(5);
  qc.cx(3, 2);  // native on QX4
  const QuantumCircuit fixed = FixCxDirections(arch::ibm_qx4()).run(qc);
  EXPECT_EQ(fixed.size(), 1u);
}

TEST(Direction, WrongWayCxGetsFourHadamards) {
  QuantumCircuit qc(5);
  qc.cx(2, 3);  // only 3 -> 2 is native on QX4
  const QuantumCircuit fixed = FixCxDirections(arch::ibm_qx4()).run(qc);
  EXPECT_EQ(fixed.count(OpKind::H), 4);
  EXPECT_EQ(fixed.count(OpKind::CX), 1);
  EXPECT_EQ(fixed.ops()[2].qubits, (std::vector<Qubit>{3, 2}));
  expect_equivalent(qc, fixed);
  EXPECT_TRUE(satisfies_coupling(fixed, arch::ibm_qx4()));
}

TEST(Direction, UncoupledPairThrows) {
  QuantumCircuit qc(5);
  qc.cx(0, 4);
  EXPECT_THROW(FixCxDirections(arch::ibm_qx4()).run(qc),
               std::invalid_argument);
}

TEST(Direction, LegalityChecks) {
  QuantumCircuit ok(5);
  ok.h(0).cx(1, 0);
  EXPECT_TRUE(satisfies_coupling(ok, arch::ibm_qx4()));
  QuantumCircuit wrong_way(5);
  wrong_way.cx(0, 1);
  EXPECT_FALSE(satisfies_coupling(wrong_way, arch::ibm_qx4()));
  EXPECT_TRUE(satisfies_connectivity(wrong_way, arch::ibm_qx4()));
  QuantumCircuit distant(5);
  distant.cx(0, 4);
  EXPECT_FALSE(satisfies_connectivity(distant, arch::ibm_qx4()));
}

// --- pass manager ----------------------------------------------------------------

TEST(PassManager, RunsPassesInOrder) {
  PassManager pm;
  pm.append<DecomposeMultiQubit>();
  pm.append<GateCancellation>();
  QuantumCircuit qc(2);
  qc.swap(0, 1).swap(0, 1);
  EXPECT_EQ(pm.run(qc).size(), 0u);
  EXPECT_EQ(pm.pass_names().size(), 2u);
  EXPECT_EQ(pm.pass_names()[0], "decompose-multi-qubit");
}

// --- end-to-end transpile ------------------------------------------------------

TEST(Transpile, Fig1CircuitOnQx4IsLegalAndEquivalent) {
  QuantumCircuit qc(4);
  qc.h(2).cx(2, 3).cx(0, 1).h(1).cx(1, 2).t(0).cx(2, 0).cx(0, 1);
  for (const MapperKind kind :
       {MapperKind::Naive, MapperKind::Sabre, MapperKind::AStar}) {
    TranspileOptions opt;
    opt.mapper = kind;
    const TranspileResult result =
        transpile(qc, arch::qx4_backend(), opt);
    EXPECT_TRUE(satisfies_coupling(result.circuit, arch::ibm_qx4()));
    // Equivalence under the final layout permutation.
    sim::StatevectorSimulator sim;
    const auto mapped_sv = sim.statevector(result.circuit).amplitudes();
    const auto logical_sv = sim.statevector(qc).amplitudes();
    const auto expected =
        map::embed_state(logical_sv, result.final_layout, 5);
    EXPECT_TRUE(states_equal_up_to_phase(mapped_sv, expected, 1e-8));
  }
}

TEST(Transpile, UBasisOptionYieldsDeviceGatesOnly) {
  QuantumCircuit qc(3);
  qc.h(0).ccx(0, 1, 2).swap(1, 2);
  TranspileOptions opt;
  opt.to_u_basis = true;
  opt.optimization_level = 2;
  const TranspileResult result = transpile(qc, arch::qx4_backend(), opt);
  const arch::Backend backend = arch::qx4_backend();
  for (const auto& op : result.circuit.ops())
    EXPECT_TRUE(backend.is_basis_gate(op.kind)) << op_name(op.kind);
}

TEST(Transpile, OptimizationReducesGateCount) {
  QuantumCircuit qc(4);
  qc.h(2).cx(2, 3).cx(0, 1).h(1).cx(1, 2).t(0).cx(2, 0).cx(0, 1);
  TranspileOptions raw;
  raw.mapper = MapperKind::Naive;
  raw.optimization_level = 0;
  TranspileOptions optimized = raw;
  optimized.optimization_level = 2;
  const auto r0 = transpile(qc, arch::qx4_backend(), raw);
  const auto r2 = transpile(qc, arch::qx4_backend(), optimized);
  EXPECT_LE(r2.circuit.size(), r0.circuit.size());
}

// --- transpile cache -----------------------------------------------------------

/// A VQE-style ansatz: fixed structure, angle-dependent parameters, with a
/// distant CX so routing actually has work to do on QX4.
QuantumCircuit ansatz(double a, double b) {
  QuantumCircuit qc(5);
  qc.rx(a, 0).rz(b, 1).cx(0, 4).h(2).cx(1, 3).rx(a + b, 2).cx(0, 1);
  return qc;
}

TranspileOptions fixed_options() {
  TranspileOptions opt;
  opt.trials = 2;
  opt.seed = 42;  // pin the portfolio so direct and cached runs agree
  return opt;
}

TEST(TranspileCache, WarmExactHitRunsZeroMappers) {
  TranspileCache cache;
  const QuantumCircuit qc = ansatz(0.3, 0.7);
  const auto cold = cache.transpile(qc, arch::qx4_backend(), fixed_options());
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_EQ(cold.mapper_trials, 2);

  const std::uint64_t runs_before = map::mapper_run_count();
  const auto warm = cache.transpile(qc, arch::qx4_backend(), fixed_options());
  EXPECT_EQ(map::mapper_run_count(), runs_before);  // zero mapper runs
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_TRUE(warm.cache_exact);
  EXPECT_EQ(warm.mapper_trials, 0);
  EXPECT_EQ(warm.circuit, cold.circuit);
  EXPECT_EQ(warm.swaps_inserted, cold.swaps_inserted);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.exact_hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.mapper_runs_saved, 1u);
}

TEST(TranspileCache, StructuralHitRebindsParamsBitwiseEqualToDirect) {
  TranspileCache cache;
  cache.transpile(ansatz(0.3, 0.7), arch::qx4_backend(), fixed_options());

  // Same structure, new angles: routing replays, params re-bind, and the
  // result must be bitwise what a from-scratch transpile would produce.
  const QuantumCircuit next = ansatz(-1.1, 2.4);
  const std::uint64_t runs_before = map::mapper_run_count();
  const auto warm = cache.transpile(next, arch::qx4_backend(), fixed_options());
  EXPECT_EQ(map::mapper_run_count(), runs_before);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_FALSE(warm.cache_exact);
  EXPECT_EQ(cache.stats().structural_hits, 1u);

  const auto direct = transpile(next, arch::qx4_backend(), fixed_options());
  EXPECT_EQ(warm.circuit, direct.circuit);
  EXPECT_EQ(warm.initial_layout, direct.initial_layout);
  EXPECT_EQ(warm.final_layout, direct.final_layout);
  EXPECT_EQ(warm.swaps_inserted, direct.swaps_inserted);
}

TEST(TranspileCache, AngleDependentDecompositionFallsBackToCold) {
  // CRX lowers through the controlled-unitary ABC network, which elides
  // near-zero rotations — so CRX(0.7) and CRX(0.0) have the same *input*
  // structure but different lowered structures. The cache must detect the
  // divergence and run cold instead of replaying a wrong-shape template.
  auto crx_circuit = [](double angle) {
    QuantumCircuit qc(5);
    qc.h(0);
    qc.gate(OpKind::CRX, {0, 1}, {angle});
    qc.cx(1, 2);
    return qc;
  };
  TranspileCache cache;
  cache.transpile(crx_circuit(0.7), arch::qx4_backend(), fixed_options());
  const auto fallback =
      cache.transpile(crx_circuit(0.0), arch::qx4_backend(), fixed_options());
  EXPECT_FALSE(fallback.cache_hit);
  EXPECT_EQ(cache.stats().misses, 2u);
  const auto direct =
      transpile(crx_circuit(0.0), arch::qx4_backend(), fixed_options());
  EXPECT_EQ(fallback.circuit, direct.circuit);
}

TEST(TranspileCache, DifferentCouplingOrOptionsDoNotCollide) {
  TranspileCache cache;
  const QuantumCircuit qc = ansatz(0.1, 0.2);
  cache.transpile(qc, arch::qx4_backend(), fixed_options());
  TranspileOptions other = fixed_options();
  other.optimization_level = 2;
  const auto r = cache.transpile(qc, arch::qx4_backend(), other);
  EXPECT_FALSE(r.cache_hit);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(TranspileCache, EvictionKeepsTheCacheBounded) {
  TranspileCache cache(/*capacity=*/2);
  for (int n = 2; n <= 5; ++n) {
    QuantumCircuit qc(n);
    for (int q = 0; q + 1 < n; ++q) qc.cx(q, q + 1);
    cache.transpile(qc, arch::qx4_backend(), fixed_options());
  }
  EXPECT_LE(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(TranspileCache, ExecuteRoutesThroughTheGlobalCache) {
  TranspileCache::global().clear();
  TranspileCache::set_enabled(1);
  exec::ExecuteOptions opts;
  opts.shots = 16;
  opts.transpile_options = fixed_options();

  const auto cold = exec::execute(ansatz(0.5, 0.5), arch::qx4_backend(), opts);
  EXPECT_FALSE(cold.transpile_cache_hit);
  EXPECT_EQ(cold.mapper_trials, 2);

  const std::uint64_t runs_before = map::mapper_run_count();
  const auto warm = exec::execute(ansatz(1.5, -0.5), arch::qx4_backend(), opts);
  EXPECT_EQ(map::mapper_run_count(), runs_before);  // hybrid-loop hot path
  EXPECT_TRUE(warm.transpile_cache_hit);
  EXPECT_EQ(warm.mapper_trials, 0);

  TranspileCache::set_enabled(-1);
  TranspileCache::global().clear();
}

TEST(TranspileCache, DisabledCacheBypassesLookup) {
  TranspileCache::global().clear();
  TranspileCache::set_enabled(0);
  const auto before = TranspileCache::global().stats().lookups;
  const auto r =
      transpile_cached(ansatz(0.2, 0.9), arch::qx4_backend(), fixed_options());
  EXPECT_FALSE(r.cache_hit);
  EXPECT_GT(r.mapper_trials, 0);
  EXPECT_EQ(TranspileCache::global().stats().lookups, before);
  TranspileCache::set_enabled(-1);
}

}  // namespace
}  // namespace qtc::transpiler
