// QBIN decoder fuzz suite: deterministic, structure-aware mutation fuzzing
// of the strict-decode contract — every input, however mangled, either
// decodes to a circuit or throws a typed qbin::DecodeError. Anything else
// (another exception type, a crash, UB flagged by the sanitizer CI legs) is
// a bug in the decoder, not in the input. Seeds derive from core/rng.hpp's
// stream-seed mix, so every one of the 10k+ cases is reproducible by
// number. A checked-in corpus (data/qbin_corpus/: ok_* must decode, bad_*
// must throw with the expected code spelled in the filename) pins past
// regressions and the error taxonomy.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/circuit.hpp"
#include "core/gates.hpp"
#include "core/rng.hpp"
#include "qbin/qbin.hpp"

namespace qtc {
namespace {

constexpr std::uint64_t kFuzzSeed = 0x51B1'FA22'2026'0809ull;

/// Small circuit zoo used as mutation bases: enough shape diversity (empty,
/// register splits, conditionals, barriers, param-heavy) that mutations hit
/// every section of the format.
std::vector<QuantumCircuit> base_circuits() {
  std::vector<QuantumCircuit> out;
  out.emplace_back();  // empty

  QuantumCircuit bell(2, 2);
  bell.h(0).cx(0, 1).measure_all();
  out.push_back(bell);

  QuantumCircuit multi;
  multi.add_qreg("a", 3);
  multi.add_qreg("b", 2);
  multi.add_creg("m", 3);
  multi.add_creg("flag", 2);
  multi.h(0).ccx(0, 1, 3).swap(2, 4);
  multi.measure(3, 0);
  multi.x(1).c_if(1, 2);
  multi.barrier({0, 2, 4});
  out.push_back(multi);

  QuantumCircuit params(4, 4);
  for (int i = 0; i < 24; ++i) {
    params.u(0.1 * i, -0.2 * i, 5e-324, i % 4);
    params.cp(-0.0, i % 4, (i + 1) % 4);
  }
  params.measure_all();
  out.push_back(params);

  QuantumCircuit deep(6, 6);
  Rng rng(kFuzzSeed);
  for (int i = 0; i < 120; ++i) {
    const int q = static_cast<int>(rng.index(6));
    switch (rng.index(5)) {
      case 0: deep.h(q); break;
      case 1: deep.rz(rng.uniform(-3.14, 3.14), q); break;
      case 2: deep.cx(q, (q + 1) % 6); break;
      case 3: deep.reset(q); break;
      default: deep.measure(q, q); break;
    }
    if (rng.index(9) == 0) deep.c_if(0, rng.index(64));
  }
  out.push_back(deep);
  return out;
}

/// One mutation of a valid payload, chosen and parameterized by the rng:
/// bit/byte damage, truncation/extension, or targeted corruption of the
/// length and count fields that drive the decoder's control flow.
qbin::Bytes mutate(const qbin::Bytes& base, Rng& rng) {
  qbin::Bytes m = base;
  switch (rng.index(8)) {
    case 0: {  // flip random bits
      const int flips = 1 + static_cast<int>(rng.index(8));
      for (int i = 0; i < flips && !m.empty(); ++i)
        m[rng.index(m.size())] ^=
            static_cast<std::uint8_t>(1u << rng.index(8));
      break;
    }
    case 1: {  // overwrite random bytes
      const int n = 1 + static_cast<int>(rng.index(6));
      for (int i = 0; i < n && !m.empty(); ++i)
        m[rng.index(m.size())] = static_cast<std::uint8_t>(rng.index(256));
      break;
    }
    case 2:  // truncate
      if (!m.empty()) m.resize(rng.index(m.size()));
      break;
    case 3: {  // extend with junk
      const int n = 1 + static_cast<int>(rng.index(16));
      for (int i = 0; i < n; ++i)
        m.push_back(static_cast<std::uint8_t>(rng.index(256)));
      break;
    }
    case 4: {  // corrupt a header length field (total size / param offset)
      const std::size_t field = 6 + 4 * rng.index(2);
      if (m.size() >= field + 4) {
        const std::uint32_t v = static_cast<std::uint32_t>(rng.index(
            rng.index(2) == 0 ? 4096 : 0xFFFFFFFFull));
        m[field] = static_cast<std::uint8_t>(v);
        m[field + 1] = static_cast<std::uint8_t>(v >> 8);
        m[field + 2] = static_cast<std::uint8_t>(v >> 16);
        m[field + 3] = static_cast<std::uint8_t>(v >> 24);
      }
      break;
    }
    case 5: {  // set varint continuation bits: grows/derails varints
      const int n = 1 + static_cast<int>(rng.index(4));
      for (int i = 0; i < n && m.size() > qbin::kHeaderSize; ++i)
        m[qbin::kHeaderSize + rng.index(m.size() - qbin::kHeaderSize)] |=
            0x80;
      break;
    }
    case 6: {  // splice a slice of the payload over another position
      if (m.size() > 4) {
        const std::size_t len = 1 + rng.index(std::min<std::size_t>(
                                        m.size() / 2, 32));
        const std::size_t src = rng.index(m.size() - len);
        const std::size_t dst = rng.index(m.size() - len);
        for (std::size_t i = 0; i < len; ++i) m[dst + i] = base[src + i];
      }
      break;
    }
    default: {  // stack two mutations
      Rng inner(rng.index(~std::uint64_t{0}));
      m = mutate(mutate(m, inner), inner);
      break;
    }
  }
  return m;
}

/// The contract under fuzz: decode returns or throws DecodeError. On
/// success the decoded circuit must be canonical (re-encodable), and the
/// streaming path must agree with the in-memory path.
void check_decode_contract(const qbin::Bytes& input, std::uint64_t case_id) {
  bool mem_ok = false;
  QuantumCircuit mem_circuit;
  qbin::DecodeErrc mem_code{};
  try {
    mem_circuit = qbin::decode(input);
    mem_ok = true;
  } catch (const qbin::DecodeError& e) {
    mem_code = e.code();
  }
  // Any other exception type escapes and fails the test with its message.

  qbin::Bytes mem_reencoded;
  if (mem_ok) {
    // Decoded circuits are canonical: encode cannot reject them.
    ASSERT_NO_THROW(mem_reencoded = qbin::encode(mem_circuit))
        << "case " << case_id;
  }

  std::istringstream in(
      std::string(reinterpret_cast<const char*>(input.data()), input.size()));
  qbin::Reader reader(in, 1 + (case_id % 97));
  try {
    const QuantumCircuit stream_circuit = reader.read();
    // The stream path consumes exactly the declared payload, so it can
    // succeed where the strict in-memory path reports TrailingBytes.
    ASSERT_TRUE(mem_ok || mem_code == qbin::DecodeErrc::TrailingBytes)
        << "case " << case_id
        << ": stream decode succeeded but memory decode failed with "
        << qbin::to_string(mem_code);
    // Compare via canonical re-encodings: mutations can plant NaN bit
    // patterns in the param pool, and operator== can't see NaN equality.
    if (mem_ok)
      ASSERT_EQ(qbin::encode(stream_circuit), mem_reencoded)
          << "case " << case_id;
  } catch (const qbin::DecodeError&) {
    ASSERT_FALSE(mem_ok) << "case " << case_id
                         << ": memory decode succeeded but stream decode "
                            "threw";
  }
}

TEST(QbinFuzz, TenThousandMutationsDecodeOrThrowDecodeError) {
  const std::vector<QuantumCircuit> bases = base_circuits();
  std::vector<qbin::Bytes> payloads;
  for (const auto& c : bases) payloads.push_back(qbin::encode(c));

  std::uint64_t case_id = 0;
  for (std::size_t b = 0; b < payloads.size(); ++b) {
    for (int i = 0; i < 2100; ++i) {
      Rng rng(derive_stream_seed(kFuzzSeed, case_id));
      const qbin::Bytes mutant = mutate(payloads[b], rng);
      check_decode_contract(mutant, case_id);
      ++case_id;
    }
  }
  EXPECT_GE(case_id, 10000u);
}

TEST(QbinFuzz, RandomGarbageNeverCrashesTheDecoder) {
  for (std::uint64_t i = 0; i < 600; ++i) {
    Rng rng(derive_stream_seed(kFuzzSeed ^ 0xBADC0DE, i));
    qbin::Bytes junk(rng.index(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.index(256));
    // Half the cases get a valid magic/version prefix so mutations reach
    // past the header checks into the table and stream decoders.
    if (i % 2 == 0 && junk.size() >= 6) {
      junk[0] = 'Q'; junk[1] = 'B'; junk[2] = 'I'; junk[3] = 'N';
      junk[4] = qbin::kVersion;
      junk[5] = 0;
    }
    check_decode_contract(junk, 1'000'000 + i);
  }
}

TEST(QbinFuzz, HostileCountsFailCleanlyWithoutAllocating) {
  // A tiny payload declaring astronomical counts must be rejected by the
  // caps or the framing — cheaply, not by attempting the allocation.
  struct Case {
    const char* name;
    qbin::Bytes bytes;
  };
  auto header = [](std::uint32_t total, std::uint32_t param_off) {
    qbin::Bytes b = {'Q', 'B', 'I', 'N', qbin::kVersion, 0};
    for (int i = 0; i < 4; ++i)
      b.push_back(static_cast<std::uint8_t>(total >> (8 * i)));
    for (int i = 0; i < 4; ++i)
      b.push_back(static_cast<std::uint8_t>(param_off >> (8 * i)));
    return b;
  };

  // 2^40 qubits via varint: must throw BadCount, not reserve terabytes.
  qbin::Bytes huge_qubits = header(22, 21);
  for (int i = 0; i < 5; ++i) huge_qubits.push_back(0x80);
  huge_qubits.push_back(0x10);
  while (huge_qubits.size() < 22) huge_qubits.push_back(0);
  EXPECT_THROW(qbin::decode(huge_qubits), qbin::DecodeError);

  // Declared total far beyond the actual bytes: Truncated, not a hang.
  qbin::Bytes big_total = header(0xFFFFFFF0u, 16);
  big_total.push_back(0);
  EXPECT_THROW(qbin::decode(big_total), qbin::DecodeError);

  // op_count of 2^29 in a 30-byte payload: the per-op byte floor trips
  // Truncated long before 2^29 iterations or any large reserve.
  qbin::Bytes many_ops = header(30, 29);
  many_ops.push_back(1);  // num_qubits = 1
  many_ops.push_back(0);  // num_clbits = 0
  many_ops.push_back(1);  // one qreg
  many_ops.push_back(1);  // name length 1
  many_ops.push_back('q');
  many_ops.push_back(1);  // size 1
  many_ops.push_back(0);  // zero cregs
  for (int i = 0; i < 4; ++i) many_ops.push_back(0x80);
  many_ops.push_back(0x02);  // op_count varint = 2^29
  while (many_ops.size() < 30) many_ops.push_back(0);
  EXPECT_THROW(qbin::decode(many_ops), qbin::DecodeError);
}

TEST(QbinFuzz, RegisterSizeSumCannotWrapPastU64) {
  // Regression: qreg sizes {1, 2^64-1, 4} sum to 4 mod 2^64, which is <=
  // the declared 5 qubits — an accumulate-then-check loop passes both the
  // prefix and final-sum checks and hands a negative size to the IR, whose
  // std::invalid_argument would escape the DecodeError contract. The
  // decoder must reject the oversized register itself.
  qbin::Bytes b = {'Q', 'B', 'I', 'N', qbin::kVersion, 0};
  auto u32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  u32(48);         // total_size
  u32(40);         // param_offset (never reached)
  b.push_back(5);  // num_qubits
  b.push_back(0);  // num_clbits
  b.push_back(3);  // three qregs
  b.push_back(1); b.push_back('a'); b.push_back(1);  // "a": size 1
  b.push_back(1); b.push_back('b');                  // "b": size 2^64-1
  for (int i = 0; i < 9; ++i) b.push_back(0xFF);
  b.push_back(0x01);
  b.push_back(1); b.push_back('c'); b.push_back(4);  // "c": size 4
  while (b.size() < 48) b.push_back(0);
  try {
    qbin::decode(b);
    FAIL() << "wraparound register table decoded";
  } catch (const qbin::DecodeError& e) {
    EXPECT_EQ(e.code(), qbin::DecodeErrc::BadRegisterTable) << e.what();
  }
}

TEST(QbinFuzz, CorpusRegressions) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(QTC_DATA_DIR) / "qbin_corpus";
  ASSERT_TRUE(fs::exists(dir)) << dir;
  std::size_t ok_seen = 0, bad_seen = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    std::ifstream f(entry.path(), std::ios::binary);
    ASSERT_TRUE(f) << name;
    std::vector<char> raw((std::istreambuf_iterator<char>(f)),
                          std::istreambuf_iterator<char>());
    const qbin::Bytes bytes(raw.begin(), raw.end());
    if (name.rfind("ok_", 0) == 0) {
      ++ok_seen;
      QuantumCircuit c;
      ASSERT_NO_THROW(c = qbin::decode(bytes)) << name;
      // Corpus payloads are canonical encodings: re-encoding the decoded
      // circuit reproduces the file byte for byte.
      EXPECT_EQ(qbin::encode(c), bytes) << name;
    } else if (name.rfind("bad_", 0) == 0) {
      ++bad_seen;
      try {
        qbin::decode(bytes);
        FAIL() << name << " decoded but is a regression case";
      } catch (const qbin::DecodeError& e) {
        // bad_<Code>_*.qbin spells the expected error code.
        const std::string expect = name.substr(4, name.find('_', 4) - 4);
        EXPECT_EQ(expect, qbin::to_string(e.code())) << name;
      }
    } else {
      FAIL() << "corpus file " << name << " must be ok_* or bad_*";
    }
  }
  EXPECT_GE(ok_seen, 4u);
  EXPECT_GE(bad_seen, 8u);
}

}  // namespace
}  // namespace qtc
