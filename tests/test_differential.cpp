// Differential-testing harness across the simulator portfolio: seeded random
// circuits are executed by the array (statevector), decision-diagram and —
// when Clifford-only — stabilizer engines, which must agree on probabilities
// and counts; each circuit additionally goes through the transpiler and must
// stay equivalent on the physical qubits. Any disagreement localizes a bug
// to one engine (or to a transpiler pass) without needing a known-good
// reference. Every cross-check runs under all four gate-fusion x SIMD
// combinations, so both the fused execution pipeline and the vector kernel
// layer face the same differential vote as the raw scalar kernels, and a
// dedicated test pins fixed-seed counts to be identical in every mode.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arch/backend.hpp"
#include "dd/simulator.hpp"
#include "exec/execute.hpp"
#include "map/mapping.hpp"
#include "noise/density_matrix.hpp"
#include "noise/noise_model.hpp"
#include "noise/trajectory.hpp"
#include "qbin/qbin.hpp"
#include "service/execution_service.hpp"
#include "sim/fusion.hpp"
#include "sim/simd.hpp"
#include "sim/stabilizer.hpp"
#include "sim/simulator.hpp"
#include "transpiler/direction.hpp"
#include "transpiler/transpile.hpp"

namespace qtc {
namespace {

/// Runs a test body under every fusion x SIMD combination, restoring the
/// env/default configuration afterwards. SCOPED_TRACE labels failures with
/// the active mode. (With SIMD compiled out or unsupported on the host the
/// simd-on legs transparently run the scalar path — still a valid vote.)
template <typename Body>
void with_fusion_off_and_on(const Body& body) {
  for (int fusion = 0; fusion <= 1; ++fusion) {
    for (int simd = 0; simd <= 1; ++simd) {
      SCOPED_TRACE(std::string(fusion ? "fusion on" : "fusion off") +
                   (simd ? ", simd on" : ", simd off"));
      sim::set_fusion_enabled(fusion);
      sim::simd::set_simd_enabled(simd);
      body();
    }
  }
  sim::set_fusion_enabled(-1);
  sim::simd::set_simd_enabled(-1);
}

/// Universal gate mix (CX/rz-heavy, matching transpiler targets) over
/// 2..10 qubits with a trailing measure-all layer.
QuantumCircuit random_measured_circuit(std::uint64_t seed) {
  const int n = 2 + static_cast<int>(seed % 9);  // 2..10 qubits
  const int gates = 15 + static_cast<int>((seed * 7) % 36);
  Rng rng(seed * 7919 + 1);
  QuantumCircuit qc(n, n);
  for (int g = 0; g < gates; ++g) {
    const int q = static_cast<int>(rng.index(n));
    const int q2 = (q + 1 + static_cast<int>(rng.index(n - 1))) % n;
    switch (rng.index(9)) {
      case 0:
        qc.h(q);
        break;
      case 1:
        qc.t(q);
        break;
      case 2:
        qc.rz(rng.uniform(-PI, PI), q);
        break;
      case 3:
        qc.sx(q);
        break;
      case 4:
        qc.u(rng.uniform(0, PI), rng.uniform(-PI, PI), rng.uniform(-PI, PI),
             q);
        break;
      case 5:
        qc.cz(q, q2);
        break;
      case 6:
        qc.cp(rng.uniform(-PI, PI), q, q2);
        break;
      case 7:
        qc.swap(q, q2);
        break;
      default:
        qc.cx(q, q2);
    }
  }
  qc.measure_all();
  return qc;
}

/// Clifford-only mix so the stabilizer engine can join the vote.
QuantumCircuit random_clifford_circuit(std::uint64_t seed) {
  const int n = 2 + static_cast<int>(seed % 5);  // 2..6 qubits
  const int gates = 12 + static_cast<int>((seed * 5) % 25);
  Rng rng(seed * 104729 + 3);
  QuantumCircuit qc(n, n);
  for (int g = 0; g < gates; ++g) {
    const int q = static_cast<int>(rng.index(n));
    const int q2 = (q + 1 + static_cast<int>(rng.index(n - 1))) % n;
    switch (rng.index(7)) {
      case 0:
        qc.h(q);
        break;
      case 1:
        qc.s(q);
        break;
      case 2:
        qc.x(q);
        break;
      case 3:
        qc.sdg(q);
        break;
      case 4:
        qc.cz(q, q2);
        break;
      case 5:
        qc.swap(q, q2);
        break;
      default:
        qc.cx(q, q2);
    }
  }
  qc.measure_all();
  return qc;
}

constexpr std::uint64_t kNumCircuits = 50;

// --- array vs decision-diagram: exact state agreement ------------------------

TEST(Differential, ArrayAndDDStatesAgreeOnRandomCircuits) {
  with_fusion_off_and_on([&] {
    for (std::uint64_t seed = 1; seed <= kNumCircuits; ++seed) {
      const QuantumCircuit qc = random_measured_circuit(seed).unitary_part();
      sim::StatevectorSimulator array;
      const auto sv = array.statevector(qc).amplitudes();
      dd::DDSimulator dds;
      const auto dd_amps = dds.statevector(qc);
      EXPECT_TRUE(states_equal_up_to_phase(sv, dd_amps, 1e-7))
          << "engines disagree on seed " << seed;
    }
  });
}

// --- counts-level agreement on the small circuits ----------------------------

TEST(Differential, ArrayAndDDCountsAgreeOnSmallCircuits) {
  with_fusion_off_and_on([&] {
    for (std::uint64_t seed = 1; seed <= kNumCircuits; ++seed) {
      const QuantumCircuit qc = random_measured_circuit(seed);
      if (qc.num_qubits() > 4) continue;  // keep per-bin statistics meaningful
      const int shots = 4000;
      sim::StatevectorSimulator array(seed);
      dd::DDSimulator dds(seed + 1);
      const auto ca = array.run(qc, shots).counts;
      const auto cd = dds.run(qc, shots).counts;
      ASSERT_EQ(ca.shots, shots);
      ASSERT_EQ(cd.shots, shots);
      for (std::uint64_t i = 0; i < (std::uint64_t{1} << qc.num_qubits());
           ++i) {
        const std::string bits = sim::format_bits(i, qc.num_qubits());
        EXPECT_NEAR(ca.probability(bits), cd.probability(bits), 0.05)
            << "seed " << seed << " bits " << bits;
      }
    }
  });
}

// --- three-engine vote on Clifford circuits ----------------------------------

TEST(Differential, ThreeEnginesAgreeOnCliffordCircuits) {
  with_fusion_off_and_on([&] {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const QuantumCircuit qc = random_clifford_circuit(seed);
      ASSERT_TRUE(sim::is_clifford_circuit(qc)) << "generator broke, seed "
                                                << seed;
      const int shots = 4000;
      sim::StatevectorSimulator array(seed);
      sim::StabilizerSimulator tableau(seed + 1);
      dd::DDSimulator dds(seed + 2);
      const auto ca = array.run(qc, shots).counts;
      const auto ct = tableau.run(qc, shots);
      const auto cd = dds.run(qc, shots).counts;
      for (std::uint64_t i = 0; i < (std::uint64_t{1} << qc.num_qubits());
           ++i) {
        const std::string bits = sim::format_bits(i, qc.num_qubits());
        EXPECT_NEAR(ca.probability(bits), ct.probability(bits), 0.05)
            << "stabilizer vs array, seed " << seed << " bits " << bits;
        EXPECT_NEAR(ca.probability(bits), cd.probability(bits), 0.05)
            << "dd vs array, seed " << seed << " bits " << bits;
      }
    }
  });
}

// --- dynamic Clifford circuits: packed vs byte vs array ----------------------

/// Clifford mix with mid-circuit measurement, reset and classically
/// conditioned Paulis — the dynamic-circuit surface of the tableau engines.
/// Conditioned seeds exercise the per-shot packed fallback; unconditioned
/// ones the tableau-once skeleton sampler.
QuantumCircuit random_dynamic_clifford_circuit(std::uint64_t seed) {
  const int n = 2 + static_cast<int>(seed % 3);  // 2..4 qubits
  const int gates = 16 + static_cast<int>((seed * 11) % 17);
  Rng rng(seed * 52361 + 9);
  QuantumCircuit qc(n, n);
  for (int g = 0; g < gates; ++g) {
    const int q = static_cast<int>(rng.index(n));
    const int q2 = (q + 1 + static_cast<int>(rng.index(n - 1))) % n;
    switch (rng.index(10)) {
      case 0:
        qc.h(q);
        break;
      case 1:
        qc.s(q);
        break;
      case 2:
        qc.x(q);
        break;
      case 3:
        qc.cx(q, q2);
        break;
      case 4:
        qc.cz(q, q2);
        break;
      case 5:
        qc.measure(q, q);  // mid-circuit
        break;
      case 6:
        qc.reset(q);
        break;
      case 7:
        qc.x(q).c_if(0, rng.index(std::uint64_t{1} << n));
        break;
      case 8:
        qc.z(q).c_if(0, 0);  // true until some clbit reads 1
        break;
      default:
        qc.swap(q, q2);
    }
  }
  qc.measure_all();
  return qc;
}

TEST(Differential, DynamicCliffordCircuitsAgreeAcrossStabilizerPathsAndArray) {
  with_fusion_off_and_on([&] {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const QuantumCircuit qc = random_dynamic_clifford_circuit(seed);
      ASSERT_TRUE(sim::is_clifford_circuit(qc)) << "generator broke, seed "
                                                << seed;
      const int shots = 4000;
      // Packed vs byte is an exact contract: identical per-shot coin
      // streams make the histograms bitwise equal, not just statistically
      // close.
      sim::StabilizerSimulator tableau(seed + 1);
      sim::set_stab_packed(1);
      const auto cp = tableau.run(qc, shots);
      sim::set_stab_packed(0);
      const auto cb = tableau.run(qc, shots);
      sim::set_stab_packed(-1);
      EXPECT_EQ(cp.histogram, cb.histogram) << "packed vs byte, seed "
                                            << seed;
      // The array engine votes statistically on the same distribution.
      sim::StatevectorSimulator array(seed);
      const auto ca = array.run(qc, shots).counts;
      for (std::uint64_t i = 0; i < (std::uint64_t{1} << qc.num_qubits());
           ++i) {
        const std::string bits = sim::format_bits(i, qc.num_qubits());
        EXPECT_NEAR(ca.probability(bits), cp.probability(bits), 0.05)
            << "stabilizer vs array, seed " << seed << " bits " << bits;
      }
    }
  });
}

// --- transpilation preserves every circuit -----------------------------------

TEST(Differential, TranspiledCircuitsStayEquivalent) {
  with_fusion_off_and_on([&] {
    for (std::uint64_t seed = 1; seed <= kNumCircuits; ++seed) {
      const QuantumCircuit logical = random_measured_circuit(seed);
      const bool small = logical.num_qubits() <= 5;
      const arch::Backend backend =
          small ? arch::qx4_backend() : arch::qx5_backend();
      const auto result = transpiler::transpile(logical, backend);
      ASSERT_TRUE(transpiler::satisfies_coupling(result.circuit,
                                                 backend.coupling_map()))
          << "seed " << seed;
      sim::StatevectorSimulator sim;
      const auto mapped = sim.statevector(result.circuit).amplitudes();
      const auto expected =
          map::embed_state(sim.statevector(logical).amplitudes(),
                           result.final_layout, backend.num_qubits());
      EXPECT_TRUE(states_equal_up_to_phase(mapped, expected, 1e-7))
          << "transpilation broke equivalence on seed " << seed;
    }
  });
}

// --- transpiled circuits re-enter the differential vote ----------------------

TEST(Differential, TranspiledCliffordCountsSurviveAcrossEngines) {
  // Clifford circuits stay Clifford-representable through routing (SWAP/CX
  // insertion), so all three engines must still agree after transpilation
  // once counts are read through the clbit wiring. Routing can interleave
  // SWAPs between the measurements, which forces the per-shot path — stick
  // to the 5-qubit QX4 so that path stays cheap.
  with_fusion_off_and_on([&] {
    for (std::uint64_t seed : {1u, 2u, 3u, 5u, 6u}) {
      const QuantumCircuit logical = random_clifford_circuit(seed);
      ASSERT_LE(logical.num_qubits(), 5);
      const auto result = transpiler::transpile(logical, arch::qx4_backend());
      const int shots = 4000;
      sim::StatevectorSimulator array(seed);
      const auto before = array.run(logical, shots).counts;
      sim::StatevectorSimulator array2(seed + 17);
      const auto after = array2.run(result.circuit, shots).counts;
      for (std::uint64_t i = 0;
           i < (std::uint64_t{1} << logical.num_qubits()); ++i) {
        const std::string bits = sim::format_bits(i, logical.num_qubits());
        EXPECT_NEAR(before.probability(bits), after.probability(bits), 0.05)
            << "seed " << seed << " bits " << bits;
      }
    }
  });
}

// --- noisy engines join the vote: trajectories vs exact density matrix ------

TEST(Differential, TrajectoryMatchesDensityMatrixFusionOffAndOn) {
  // The Monte-Carlo trajectory engine and the exact density-matrix engine
  // share nothing but the channel definitions, so agreement on random noisy
  // circuits localizes bugs to one of them. No readout error here, so the
  // exact outcome distribution is the evolved rho's diagonal read through
  // the identity measure-all wiring. Runs with fusion off AND on: the
  // noise-aware trajectory plan must not let a fused kernel cross a channel.
  const noise::NoiseModel model = noise::uniform_depolarizing(0.005, 0.02);
  with_fusion_off_and_on([&] {
    int tested = 0;
    for (std::uint64_t seed = 1; seed <= kNumCircuits && tested < 8; ++seed) {
      const QuantumCircuit qc = random_measured_circuit(seed);
      if (qc.num_qubits() > 4) continue;  // DM cost is 4^n
      ++tested;
      noise::DensityMatrixSimulator dms;
      const auto exact = dms.evolve(qc, model).probabilities();
      noise::TrajectorySimulator traj(seed * 31 + 5);
      const auto counts = traj.run(qc, model, 6000);
      for (std::uint64_t i = 0; i < exact.size(); ++i) {
        const std::string bits = sim::format_bits(i, qc.num_qubits());
        EXPECT_NEAR(counts.probability(bits), exact[i], 0.03)
            << "trajectory vs density matrix, seed " << seed << " bits "
            << bits;
      }
    }
    ASSERT_GE(tested, 4) << "generator stopped producing small circuits";
  });
}

// --- the execution service joins the vote ------------------------------------

TEST(Differential, ServicePathMatchesDirectExecuteAndArrayEngine) {
  // A sample of the standing cross-checks routed through
  // ExecutionService::submit: the async service (3 workers, concurrent
  // submission, batching on) must return counts bitwise equal to a direct
  // exec::execute with the same seed, and — executed noiselessly — those
  // counts must agree with the array engine's logical-circuit distribution,
  // so the whole transpile+dispatch path re-enters the engine-equivalence
  // oracle.
  const noise::NoiseModel noiseless;  // empty model: exact unitary sampling
  const int shots = 4000;
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t seed = 1; seed <= kNumCircuits && seeds.size() < 6; ++seed)
    if (random_measured_circuit(seed).num_qubits() <= 5) seeds.push_back(seed);
  ASSERT_GE(seeds.size(), 4u);

  service::ServiceConfig config;
  config.workers = 3;
  service::ExecutionService svc(config);
  const arch::Backend backend = arch::qx4_backend();
  std::vector<service::JobHandle> handles;
  std::vector<exec::ExecuteOptions> opts_used;
  for (std::uint64_t seed : seeds) {
    exec::ExecuteOptions opts;
    opts.shots = shots;
    opts.seed = seed * 101 + 7;
    opts.noise_model = &noiseless;
    opts_used.push_back(opts);
    handles.push_back(svc.submit(random_measured_circuit(seed), backend, opts,
                                 "differential"));
  }
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const std::uint64_t seed = seeds[i];
    SCOPED_TRACE("seed " + std::to_string(seed));
    const service::JobResult r = handles[i].result();
    ASSERT_EQ(r.state, service::JobState::Done) << r.error;
    const QuantumCircuit logical = random_measured_circuit(seed);
    const auto direct = exec::execute(logical, backend, opts_used[i]);
    EXPECT_EQ(r.counts.histogram, direct.counts.histogram)
        << "service counts diverged from direct exec::execute";
    sim::StatevectorSimulator array(seed);
    const auto expected = array.run(logical, shots).counts;
    for (std::uint64_t b = 0; b < (std::uint64_t{1} << logical.num_qubits());
         ++b) {
      const std::string bits = sim::format_bits(b, logical.num_qubits());
      EXPECT_NEAR(r.counts.probability(bits), expected.probability(bits), 0.05)
          << "service vs array engine, bits " << bits;
    }
  }
}

TEST(Differential, QbinServicePathMatchesDirectExecute) {
  // The QBIN ingest fast path re-enters the same oracle: a circuit shipped
  // to the service as a pre-encoded binary payload must produce counts
  // bitwise equal to a direct exec::execute of the original circuit — the
  // decode is lossless and the payload-derived batching key changes only
  // *which jobs run back to back*, never any job's result. Exercised with
  // the payload fingerprint path both on (key read off the payload's
  // structural prefix) and off (key recomputed from the decoded circuit).
  const noise::NoiseModel noiseless;
  const int shots = 4000;
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t seed = 1; seed <= kNumCircuits && seeds.size() < 6; ++seed)
    if (random_measured_circuit(seed).num_qubits() <= 5) seeds.push_back(seed);
  ASSERT_GE(seeds.size(), 4u);
  const arch::Backend backend = arch::qx4_backend();

  for (int fingerprint = 1; fingerprint >= 0; --fingerprint) {
    SCOPED_TRACE(fingerprint ? "payload fingerprint" : "decoded-circuit key");
    qbin::set_fingerprint_enabled(fingerprint);
    service::ServiceConfig config;
    config.workers = 3;
    service::ExecutionService svc(config);
    std::vector<service::JobHandle> handles;
    std::vector<exec::ExecuteOptions> opts_used;
    for (std::uint64_t seed : seeds) {
      exec::ExecuteOptions opts;
      opts.shots = shots;
      opts.seed = seed * 131 + 5;
      opts.noise_model = &noiseless;
      opts_used.push_back(opts);
      const qbin::Bytes payload = qbin::encode(random_measured_circuit(seed));
      handles.push_back(svc.submit(payload, backend, opts, "qbin"));
    }
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      SCOPED_TRACE("seed " + std::to_string(seeds[i]));
      const service::JobResult r = handles[i].result();
      ASSERT_EQ(r.state, service::JobState::Done) << r.error;
      const auto direct = exec::execute(random_measured_circuit(seeds[i]),
                                        backend, opts_used[i]);
      EXPECT_EQ(r.counts.histogram, direct.counts.histogram)
          << "QBIN service counts diverged from direct exec::execute";
    }
  }
  qbin::set_fingerprint_enabled(-1);
}

TEST(Differential, QbinAndCircuitSubmissionsBatchTogether) {
  // Payload-derived and circuit-derived batching keys must be equal for the
  // same structure (structural_cache_key_digest shares the key mixer with
  // structural_cache_key), so a mixed stream of 1 circuit + N payload
  // submissions of one ansatz structure — different angles — pays one
  // mapper run and batches the rest, with every job's counts still bitwise
  // equal to its own direct execution.
  const noise::NoiseModel noiseless;
  auto ansatz = [](double a, double b) {
    QuantumCircuit qc(3, 3);
    qc.ry(a, 0).ry(b, 1).cx(0, 1).ry(a + b, 2).cx(1, 2);
    qc.measure_all();
    return qc;
  };
  const arch::Backend backend = arch::qx4_backend();
  service::ServiceConfig config;
  config.workers = 1;  // one worker: queued same-key jobs batch maximally
  service::ExecutionService svc(config);
  std::vector<service::JobHandle> handles;
  std::vector<QuantumCircuit> circuits;
  std::vector<exec::ExecuteOptions> opts_used;
  for (int i = 0; i < 8; ++i) {
    exec::ExecuteOptions opts;
    opts.shots = 1000;
    opts.seed = 900 + i;
    opts.noise_model = &noiseless;
    opts_used.push_back(opts);
    circuits.push_back(ansatz(0.2 + 0.1 * i, -0.4 + 0.05 * i));
    if (i == 0)
      handles.push_back(svc.submit(circuits.back(), backend, opts, "mixed"));
    else
      handles.push_back(
          svc.submit(qbin::encode(circuits.back()), backend, opts, "mixed"));
  }
  svc.drain();
  for (std::size_t i = 0; i < handles.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    const service::JobResult r = handles[i].result();
    ASSERT_EQ(r.state, service::JobState::Done) << r.error;
    const auto direct = exec::execute(circuits[i], backend, opts_used[i]);
    EXPECT_EQ(r.counts.histogram, direct.counts.histogram);
  }
  const service::ServiceStats stats = svc.stats();
  EXPECT_GE(stats.batch_hits + stats.cache_hits, 1u)
      << "same-structure circuit and payload submissions never shared work";
}

// --- fusion on/off: fixed-seed counts must be bitwise identical --------------

TEST(Differential, FusionOnOffCountsIdenticalForFixedSeed) {
  // The fused plan reorders no operations and every kernel preserves the
  // engine's determinism contract, so a fixed-seed run must produce the
  // exact same histogram with fusion on and off — on the sampling-friendly
  // path (final measurement layer) for every seeded random circuit, and on
  // the per-shot path once a mid-circuit conditional forces re-execution.
  for (std::uint64_t seed = 1; seed <= kNumCircuits; ++seed) {
    const QuantumCircuit qc = random_measured_circuit(seed);
    sim::set_fusion_enabled(0);
    sim::StatevectorSimulator off(seed);
    const auto counts_off = off.run(qc, 1024).counts;
    sim::set_fusion_enabled(1);
    sim::StatevectorSimulator on(seed);
    const auto counts_on = on.run(qc, 1024).counts;
    EXPECT_EQ(counts_off.histogram, counts_on.histogram)
        << "fusion changed fixed-seed counts on seed " << seed;
  }
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    QuantumCircuit qc = random_measured_circuit(seed);
    // Turn the final measurement layer into a mid-circuit one: condition an
    // extra layer on the first clbit, then re-measure everything.
    qc.x(0).c_if(0, 1);
    qc.h(1);
    qc.measure_all();
    sim::set_fusion_enabled(0);
    sim::StatevectorSimulator off(seed);
    const auto counts_off = off.run(qc, 512).counts;
    sim::set_fusion_enabled(1);
    sim::StatevectorSimulator on(seed);
    const auto counts_on = on.run(qc, 512).counts;
    EXPECT_EQ(counts_off.histogram, counts_on.histogram)
        << "fusion changed per-shot fixed-seed counts on seed " << seed;
  }
  sim::set_fusion_enabled(-1);
}

}  // namespace
}  // namespace qtc
