#include "ignis/quantum_volume.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace qtc::ignis {
namespace {

TEST(QuantumVolume, ModelCircuitShape) {
  Rng rng(3);
  const QuantumCircuit qc = qv_model_circuit(4, rng);
  EXPECT_EQ(qc.num_qubits(), 4);
  EXPECT_FALSE(qc.has_measurements());
  // 4 layers x 2 pairs x 3 interaction gates.
  EXPECT_EQ(qc.count(OpKind::RXX) + qc.count(OpKind::RZZ), 4 * 2 * 3);
}

TEST(QuantumVolume, OddWidthLeavesOneQubitIdlePerLayer) {
  Rng rng(5);
  const QuantumCircuit qc = qv_model_circuit(3, rng);
  EXPECT_EQ(qc.count(OpKind::RXX) + qc.count(OpKind::RZZ), 3 * 1 * 3);
}

TEST(QuantumVolume, ModelCircuitsVaryWithSeed) {
  Rng r1(1), r2(2);
  const QuantumCircuit a = qv_model_circuit(3, r1);
  const QuantumCircuit b = qv_model_circuit(3, r2);
  bool differ = a.size() != b.size();
  for (std::size_t i = 0; !differ && i < a.size(); ++i)
    differ = a.ops()[i].params != b.ops()[i].params ||
             a.ops()[i].qubits != b.ops()[i].qubits;
  EXPECT_TRUE(differ);
}

TEST(QuantumVolume, NoiselessDeviceScoresHeavy) {
  // Ideal heavy-output probability of random circuits converges to
  // (1 + ln 2) / 2 ~ 0.8466; noiseless runs must clear the 2/3 bar easily.
  QvConfig config;
  config.width = 3;
  config.circuits = 15;
  config.shots = 256;
  const QvResult result = run_quantum_volume(config, noise::NoiseModel{});
  EXPECT_TRUE(result.passed());
  EXPECT_NEAR(result.heavy_output_probability, 0.8466, 0.08);
  EXPECT_EQ(result.volume(), 8u);
}

TEST(QuantumVolume, HeavyDepolarizingNoiseFailsTheTest) {
  QvConfig config;
  config.width = 3;
  config.circuits = 10;
  config.shots = 256;
  const auto noisy = noise::uniform_depolarizing(0.02, 0.15);
  const QvResult result = run_quantum_volume(config, noisy);
  EXPECT_FALSE(result.passed());
  // Fully scrambled output sits at 0.5 heavy probability.
  EXPECT_GT(result.heavy_output_probability, 0.40);
  EXPECT_LT(result.heavy_output_probability, 2.0 / 3.0);
}

TEST(QuantumVolume, HopDecreasesWithNoiseStrength) {
  QvConfig config;
  config.width = 2;
  config.circuits = 10;
  config.shots = 256;
  double last = 1.0;
  for (double p : {0.0, 0.05, 0.25}) {
    const auto model = noise::uniform_depolarizing(p / 10, p);
    const QvResult r = run_quantum_volume(config, model);
    EXPECT_LT(r.heavy_output_probability, last + 0.05);
    last = r.heavy_output_probability;
  }
}

TEST(QuantumVolume, ConfigValidation) {
  Rng rng(1);
  EXPECT_THROW(qv_model_circuit(1, rng), std::invalid_argument);
  QvConfig bad;
  bad.circuits = 0;
  EXPECT_THROW(run_quantum_volume(bad, noise::NoiseModel{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace qtc::ignis
