// Property tests for the mapping portfolio: every mapper, on every coupling
// map, must produce a circuit that is statevector-equivalent to the logical
// one under the final layout permutation — with gate fusion both on and off
// (the fused executor sees the routed SWAP/CX stream differently). Plus the
// portfolio's determinism contract: a fixed seed gives a bitwise-identical
// MappingResult whatever QTC_NUM_THREADS is, and widening the portfolio
// never makes the routing worse (trial 0 is always in the pool).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "arch/coupling_map.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "map/mapping.hpp"
#include "sim/fusion.hpp"
#include "sim/simulator.hpp"
#include "transpiler/decompose.hpp"
#include "transpiler/direction.hpp"

namespace qtc::map {
namespace {

QuantumCircuit random_circuit(int n, int gates, std::uint64_t seed) {
  Rng rng(seed);
  QuantumCircuit qc(n);
  for (int g = 0; g < gates; ++g) {
    switch (rng.index(4)) {
      case 0:
        qc.h(static_cast<int>(rng.index(n)));
        break;
      case 1:
        qc.rz(rng.uniform(-PI, PI), static_cast<int>(rng.index(n)));
        break;
      default: {
        const int a = static_cast<int>(rng.index(n));
        const int b = (a + 1 + static_cast<int>(rng.index(n - 1))) % n;
        qc.cx(a, b);
      }
    }
  }
  return qc;
}

/// Simulate the routed circuit (SWAPs lowered to CX) and compare against the
/// logical statevector embedded through the final layout.
void expect_equivalent(const QuantumCircuit& logical,
                       const MappingResult& result,
                       const arch::CouplingMap& coupling) {
  ASSERT_TRUE(transpiler::satisfies_connectivity(result.circuit, coupling));
  const QuantumCircuit lowered =
      transpiler::DecomposeMultiQubit().run(result.circuit);
  sim::StatevectorSimulator sim;
  const auto mapped_sv = sim.statevector(lowered).amplitudes();
  const auto logical_sv = sim.statevector(logical).amplitudes();
  const auto expected =
      embed_state(logical_sv, result.final_layout, coupling.num_qubits());
  EXPECT_TRUE(states_equal_up_to_phase(mapped_sv, expected, 1e-8));
}

struct FusionToggle {
  explicit FusionToggle(int enabled) { sim::set_fusion_enabled(enabled); }
  ~FusionToggle() { sim::set_fusion_enabled(-1); }
};

struct ThreadOverride {
  explicit ThreadOverride(int n) { parallel::set_num_threads(n); }
  ~ThreadOverride() { parallel::set_num_threads(0); }
};

std::unique_ptr<Mapper> make_mapper(int which) {
  switch (which) {
    case 0:
      return std::make_unique<NaiveMapper>();
    case 1:
      return std::make_unique<SabreMapper>();
    default:
      return std::make_unique<AStarMapper>();
  }
}

arch::CouplingMap coupling(int which) {
  return which == 0 ? arch::linear(8) : arch::ibm_qx5();
}

class MapEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MapEquivalence, RandomCircuitsMatchUnderLayoutFusionOnAndOff) {
  const auto [mapper_id, coupling_id] = GetParam();
  const arch::CouplingMap cm = coupling(coupling_id);
  std::uint64_t seed = 1000;
  for (int n = 5; n <= 8; ++n) {
    const QuantumCircuit qc = random_circuit(n, 4 * n, ++seed);
    const MappingResult result = make_mapper(mapper_id)->run(qc, cm);
    {
      FusionToggle fusion_on(1);
      expect_equivalent(qc, result, cm);
    }
    {
      FusionToggle fusion_off(0);
      expect_equivalent(qc, result, cm);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMappersAllCouplings, MapEquivalence,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Values(0, 1)),
    [](const auto& info) {
      const std::string mapper =
          std::get<0>(info.param) == 0
              ? "naive"
              : (std::get<0>(info.param) == 1 ? "sabre" : "astar");
      return mapper +
             (std::get<1>(info.param) == 0 ? "_linear8" : "_qx5");
    });

// --- determinism contract ----------------------------------------------------

TEST(SabrePortfolio, FixedSeedIsBitwiseIdenticalAcrossThreadCounts) {
  const QuantumCircuit qc = random_circuit(8, 40, 99);
  SabreMapper mapper(20, 0.5, /*trials=*/8, /*seed=*/12345);
  MappingResult serial, threaded;
  {
    ThreadOverride one(1);
    serial = mapper.run(qc, arch::ibm_qx5());
  }
  {
    ThreadOverride four(4);
    threaded = mapper.run(qc, arch::ibm_qx5());
  }
  EXPECT_EQ(serial, threaded);
  EXPECT_EQ(serial.trials_run, 8);
}

TEST(SabrePortfolio, RepeatedRunsAreIdentical) {
  const QuantumCircuit qc = random_circuit(6, 30, 7);
  SabreMapper mapper(20, 0.5, 4, 777);
  const MappingResult a = mapper.run(qc, arch::linear(8));
  const MappingResult b = mapper.run(qc, arch::linear(8));
  EXPECT_EQ(a, b);
}

TEST(SabrePortfolio, SeedChangesAreHonored) {
  // Different base seeds explore different random layouts; the *reported*
  // portfolio metadata must reflect the winning trial either way.
  const QuantumCircuit qc = random_circuit(8, 40, 3);
  const auto r1 = SabreMapper(20, 0.5, 8, 1).run(qc, arch::linear(8));
  const auto r2 = SabreMapper(20, 0.5, 8, 2).run(qc, arch::linear(8));
  EXPECT_GE(r1.best_trial, 0);
  EXPECT_LT(r1.best_trial, 8);
  EXPECT_GE(r2.best_trial, 0);
  EXPECT_LT(r2.best_trial, 8);
}

TEST(SabrePortfolio, WiderPortfolioNeverRoutesWorse) {
  // Trial 0 (the bidirectional pass from the trivial layout) is always in
  // the pool, so the best-of-8 swap count cannot exceed the best-of-1.
  std::uint64_t seed = 40;
  for (int c = 0; c < 2; ++c) {
    const arch::CouplingMap cm = coupling(c);
    for (int rep = 0; rep < 3; ++rep) {
      const QuantumCircuit qc = random_circuit(8, 36, ++seed);
      const auto one = SabreMapper(20, 0.5, 1, 5).run(qc, cm);
      const auto eight = SabreMapper(20, 0.5, 8, 5).run(qc, cm);
      EXPECT_LE(eight.swaps_inserted, one.swaps_inserted);
      expect_equivalent(qc, eight, cm);
    }
  }
}

TEST(SabrePortfolio, SourceIndexTracksEveryRoutedOp) {
  const QuantumCircuit qc = random_circuit(7, 30, 13);
  const auto result = SabreMapper(20, 0.5, 4, 9).run(qc, arch::linear(8));
  ASSERT_EQ(result.source_index.size(), result.circuit.ops().size());
  int swaps = 0;
  for (std::size_t i = 0; i < result.source_index.size(); ++i) {
    const int src = result.source_index[i];
    if (src < 0) {
      EXPECT_EQ(result.circuit.ops()[i].kind, OpKind::SWAP);
      ++swaps;
    } else {
      // A routed op is its source op with remapped qubits.
      EXPECT_EQ(result.circuit.ops()[i].kind,
                qc.ops()[static_cast<std::size_t>(src)].kind);
      EXPECT_EQ(result.circuit.ops()[i].params,
                qc.ops()[static_cast<std::size_t>(src)].params);
    }
  }
  EXPECT_EQ(swaps, result.swaps_inserted);
}

}  // namespace
}  // namespace qtc::map
