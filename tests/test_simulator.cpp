#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qtc::sim {
namespace {

TEST(Simulator, BellCountsAreCorrelatedAndBalanced) {
  QuantumCircuit qc(2, 2);
  qc.h(0).cx(0, 1).measure_all();
  StatevectorSimulator sim(123);
  const RunResult r = sim.run(qc, 4000);
  EXPECT_EQ(r.counts.shots, 4000);
  EXPECT_EQ(r.counts.count("01") + r.counts.count("10"), 0);
  EXPECT_NEAR(r.counts.probability("00"), 0.5, 0.05);
  EXPECT_NEAR(r.counts.probability("11"), 0.5, 0.05);
}

TEST(Simulator, DeterministicCircuitIsDeterministic) {
  QuantumCircuit qc(3, 3);
  qc.x(0).x(2).measure_all();
  StatevectorSimulator sim;
  const RunResult r = sim.run(qc, 100);
  EXPECT_EQ(r.counts.count("101"), 100);
}

TEST(Simulator, NoMeasurementYieldsStatevectorOnly) {
  QuantumCircuit qc(2);
  qc.h(0).cx(0, 1);
  StatevectorSimulator sim;
  const RunResult r = sim.run(qc, 10);
  EXPECT_TRUE(r.counts.histogram.empty());
  ASSERT_EQ(r.statevector.size(), 4u);
  EXPECT_NEAR(std::abs(r.statevector[0]), SQRT1_2, 1e-12);
}

TEST(Simulator, PartialMeasurementUsesOnlyMappedClbits) {
  QuantumCircuit qc(2, 1);
  qc.x(1).measure(1, 0);
  StatevectorSimulator sim;
  const RunResult r = sim.run(qc, 50);
  EXPECT_EQ(r.counts.count("1"), 50);
}

TEST(Simulator, GateAfterMeasureForcesPerShotPath) {
  // measure then X then measure again: needs the general path.
  QuantumCircuit qc(1, 2);
  qc.h(0);
  qc.measure(0, 0);
  qc.x(0);
  qc.measure(0, 1);
  StatevectorSimulator sim(9);
  const RunResult r = sim.run(qc, 400);
  // Second bit must always be the complement of the first.
  EXPECT_EQ(r.counts.count("00"), 0);
  EXPECT_EQ(r.counts.count("11"), 0);
  EXPECT_NEAR(r.counts.probability("01"), 0.5, 0.08);
  EXPECT_NEAR(r.counts.probability("10"), 0.5, 0.08);
}

TEST(Simulator, ConditionalCorrectionTeleportation) {
  // Teleport RY(1.23)|0> from qubit 0 to qubit 2 with classical corrections.
  const double angle = 1.23;
  // Use separate 1-bit cregs so each correction conditions on its own bit
  // (c_if compares the value of a whole register, as OpenQASM's `if` does).
  QuantumCircuit tele;
  tele.add_qreg("q", 3);
  const int m0 = tele.add_creg("m0", 1);
  const int m1 = tele.add_creg("m1", 1);
  tele.add_creg("out", 1);
  tele.ry(angle, 0);
  tele.h(1).cx(1, 2);
  tele.cx(0, 1).h(0);
  tele.measure(0, 0);  // creg m0 holds clbit 0
  tele.measure(1, 1);  // creg m1 holds clbit 1
  tele.x(2).c_if(m1, 1);
  tele.z(2).c_if(m0, 1);
  tele.measure(2, 2);
  StatevectorSimulator sim(77);
  const RunResult r = sim.run(tele, 3000);
  // P(out = 1) = sin^2(angle / 2), regardless of the two measurement bits.
  const double p1 = std::pow(std::sin(angle / 2), 2);
  int ones = 0;
  for (const auto& [bits, c] : r.counts.histogram)
    if (bits[0] == '1') ones += c;  // leftmost char = highest clbit = out
  EXPECT_NEAR(ones / 3000.0, p1, 0.04);
}

TEST(Simulator, ResetInMiddleOfCircuit) {
  QuantumCircuit qc(1, 1);
  qc.h(0);
  qc.reset(0);
  qc.measure(0, 0);
  StatevectorSimulator sim;
  const RunResult r = sim.run(qc, 200);
  EXPECT_EQ(r.counts.count("0"), 200);
}

TEST(Simulator, SamplingAndPerShotPathsAgree) {
  // Same circuit with and without a trailing gate that forces the slow path;
  // distributions must match.
  QuantumCircuit fast(2, 2);
  fast.h(0).cx(0, 1).measure_all();
  QuantumCircuit slow(2, 2);
  slow.h(0).cx(0, 1);
  slow.measure(0, 0);
  slow.measure(1, 1);
  slow.id(0);  // gate after measurement: disables sampling optimization
  StatevectorSimulator sim1(42), sim2(42);
  const auto r1 = sim1.run(fast, 3000);
  const auto r2 = sim2.run(slow, 3000);
  EXPECT_NEAR(r1.counts.probability("00"), r2.counts.probability("00"), 0.05);
  EXPECT_NEAR(r1.counts.probability("11"), r2.counts.probability("11"), 0.05);
}

TEST(Simulator, InvalidShotsThrows) {
  QuantumCircuit qc(1, 1);
  qc.measure(0, 0);
  StatevectorSimulator sim;
  EXPECT_THROW(sim.run(qc, 0), std::invalid_argument);
}

TEST(Simulator, StatevectorOfConditionedCircuitThrows) {
  QuantumCircuit qc(1, 1);
  qc.measure(0, 0);
  qc.x(0).c_if(0, 1);
  StatevectorSimulator sim;
  EXPECT_THROW(sim.statevector(qc), std::invalid_argument);
}

TEST(UnitarySim, HGateUnitary) {
  QuantumCircuit qc(1);
  qc.h(0);
  const Matrix u = UnitarySimulator().unitary(qc);
  EXPECT_TRUE(u.approx_equal(op_matrix(OpKind::H), 1e-12));
}

TEST(UnitarySim, CompositionOrder) {
  // Circuit h(0) then x(0): U = X * H (later gates multiply from the left).
  QuantumCircuit qc(1);
  qc.h(0).x(0);
  const Matrix u = UnitarySimulator().unitary(qc);
  EXPECT_TRUE(
      u.approx_equal(op_matrix(OpKind::X) * op_matrix(OpKind::H), 1e-12));
}

TEST(UnitarySim, TwoQubitCircuitIsUnitary) {
  QuantumCircuit qc(2);
  qc.h(0).cx(0, 1).t(1).cx(1, 0);
  const Matrix u = UnitarySimulator().unitary(qc);
  EXPECT_TRUE(u.is_unitary(1e-10));
}

TEST(UnitarySim, MatchesStatevectorOnRandomCircuit) {
  Rng rng(13);
  QuantumCircuit qc(3);
  for (int g = 0; g < 25; ++g) {
    switch (rng.index(4)) {
      case 0:
        qc.h(static_cast<int>(rng.index(3)));
        break;
      case 1:
        qc.t(static_cast<int>(rng.index(3)));
        break;
      case 2:
        qc.rx(rng.uniform(-PI, PI), static_cast<int>(rng.index(3)));
        break;
      default: {
        const int a = static_cast<int>(rng.index(3));
        const int b = (a + 1 + static_cast<int>(rng.index(2))) % 3;
        qc.cx(a, b);
      }
    }
  }
  const Matrix u = UnitarySimulator().unitary(qc);
  StatevectorSimulator sim;
  const auto sv = sim.statevector(qc);
  // Column 0 of U is the image of |000>.
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_LT(std::abs(u(i, 0) - sv.amplitudes()[i]), 1e-10);
}

TEST(UnitarySim, RejectsMeasurement) {
  QuantumCircuit qc(1, 1);
  qc.measure(0, 0);
  EXPECT_THROW(UnitarySimulator().unitary(qc), std::invalid_argument);
}

TEST(Counts, HistogramFormattingAndQueries) {
  Counts counts;
  for (int i = 0; i < 30; ++i) counts.record("00");
  for (int i = 0; i < 10; ++i) counts.record("11");
  EXPECT_EQ(counts.shots, 40);
  EXPECT_EQ(counts.most_frequent(), "00");
  EXPECT_NEAR(counts.probability("11"), 0.25, 1e-12);
  EXPECT_EQ(counts.probability("01"), 0.0);
  const std::string s = counts.to_string();
  EXPECT_NE(s.find("00"), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(CregValue, ReadsRegisterBits) {
  Register reg{"c", 3, 1};
  // clbits: [x, b0, b1, b2]
  EXPECT_EQ(creg_value(reg, {1, 1, 0, 1}), 0b101u);
  EXPECT_EQ(creg_value(reg, {1, 0, 0, 0}), 0u);
}

}  // namespace
}  // namespace qtc::sim
