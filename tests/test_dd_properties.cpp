// Algebraic property sweeps for the decision-diagram package: the
// identities every QMDD implementation must satisfy, exercised on randomly
// generated states and operators.

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "core/gates.hpp"
#include "dd/package.hpp"

namespace qtc::dd {
namespace {

std::vector<cplx> random_amplitudes(int n, Rng& rng) {
  std::vector<cplx> amps(std::size_t{1} << n);
  for (auto& a : amps) a = cplx(rng.normal(), rng.normal());
  double norm = 0;
  for (const auto& a : amps) norm += std::norm(a);
  for (auto& a : amps) a /= std::sqrt(norm);
  return amps;
}

Matrix random_1q_unitary(Rng& rng) {
  return u3_matrix(rng.uniform(0, PI), rng.uniform(-PI, PI),
                   rng.uniform(-PI, PI));
}

class DDProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DDProperties, AdditionCommutesAndAssociates) {
  Rng rng(GetParam());
  const int n = 3;
  Package pkg(n);
  const VEdge a = pkg.make_state(random_amplitudes(n, rng));
  const VEdge b = pkg.make_state(random_amplitudes(n, rng));
  const VEdge c = pkg.make_state(random_amplitudes(n, rng));
  const auto ab = pkg.to_vector(pkg.add(a, b));
  const auto ba = pkg.to_vector(pkg.add(b, a));
  EXPECT_LT(max_abs_diff(ab, ba), 1e-10);
  const auto left = pkg.to_vector(pkg.add(pkg.add(a, b), c));
  const auto right = pkg.to_vector(pkg.add(a, pkg.add(b, c)));
  EXPECT_LT(max_abs_diff(left, right), 1e-10);
}

TEST_P(DDProperties, MultiplicationDistributesOverAddition) {
  Rng rng(GetParam() ^ 0xABCD);
  const int n = 3;
  Package pkg(n);
  const MEdge gate =
      pkg.make_gate(random_1q_unitary(rng), {static_cast<int>(rng.index(n))});
  const VEdge a = pkg.make_state(random_amplitudes(n, rng));
  const VEdge b = pkg.make_state(random_amplitudes(n, rng));
  const auto lhs = pkg.to_vector(pkg.multiply(gate, pkg.add(a, b)));
  const auto rhs = pkg.to_vector(
      pkg.add(pkg.multiply(gate, a), pkg.multiply(gate, b)));
  EXPECT_LT(max_abs_diff(lhs, rhs), 1e-10);
}

TEST_P(DDProperties, MatrixProductAssociatesWithVectorApplication) {
  Rng rng(GetParam() ^ 0x1234);
  const int n = 3;
  Package pkg(n);
  const MEdge g1 =
      pkg.make_gate(random_1q_unitary(rng), {static_cast<int>(rng.index(n))});
  const MEdge g2 = pkg.make_gate(op_matrix(OpKind::CX),
                                 {0, 1 + static_cast<int>(rng.index(n - 1))});
  const VEdge v = pkg.make_state(random_amplitudes(n, rng));
  // (g2 g1) v == g2 (g1 v)
  const auto lhs = pkg.to_vector(pkg.multiply(pkg.multiply(g2, g1), v));
  const auto rhs = pkg.to_vector(pkg.multiply(g2, pkg.multiply(g1, v)));
  EXPECT_LT(max_abs_diff(lhs, rhs), 1e-10);
}

TEST_P(DDProperties, UnitaryApplicationPreservesNorm) {
  Rng rng(GetParam() ^ 0x77);
  const int n = 4;
  Package pkg(n);
  VEdge v = pkg.make_state(random_amplitudes(n, rng));
  for (int g = 0; g < 10; ++g) {
    const int q = static_cast<int>(rng.index(n));
    const MEdge gate = rng.bernoulli(0.5)
                           ? pkg.make_gate(random_1q_unitary(rng), {q})
                           : pkg.make_gate(op_matrix(OpKind::CX),
                                           {q, (q + 1) % n});
    v = pkg.multiply(gate, v);
    EXPECT_NEAR(pkg.norm_squared(v), 1.0, 1e-9);
  }
}

TEST_P(DDProperties, InnerProductIsConjugateSymmetric) {
  Rng rng(GetParam() ^ 0xFE);
  Package pkg(3);
  const VEdge a = pkg.make_state(random_amplitudes(3, rng));
  const VEdge b = pkg.make_state(random_amplitudes(3, rng));
  const cplx ab = pkg.inner_product(a, b);
  const cplx ba = pkg.inner_product(b, a);
  EXPECT_NEAR(std::abs(ab - std::conj(ba)), 0, 1e-10);
  EXPECT_NEAR(pkg.inner_product(a, a).imag(), 0, 1e-10);
}

TEST_P(DDProperties, SamplingMatchesAmplitudeDistribution) {
  Rng rng(GetParam() ^ 0x5150);
  Package pkg(3);
  const auto amps = random_amplitudes(3, rng);
  const VEdge v = pkg.make_state(amps);
  std::vector<int> histogram(8, 0);
  Rng sampler(99);
  const int shots = 20000;
  for (int s = 0; s < shots; ++s) ++histogram[pkg.sample(v, sampler)];
  for (int i = 0; i < 8; ++i)
    EXPECT_NEAR(histogram[i] / double(shots), std::norm(amps[i]), 0.02) << i;
}

TEST_P(DDProperties, GateDDsAreUnitary) {
  Rng rng(GetParam() ^ 0xB00);
  const int n = 3;
  Package pkg(n);
  const int q = static_cast<int>(rng.index(n));
  const Matrix u = random_1q_unitary(rng);
  const MEdge gate = pkg.make_gate(u, {q});
  const MEdge dagger = pkg.make_gate(u.dagger(), {q});
  const Matrix product = pkg.to_matrix(pkg.multiply(dagger, gate));
  EXPECT_TRUE(product.approx_equal(Matrix::identity(8), 1e-10));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DDProperties,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace qtc::dd
