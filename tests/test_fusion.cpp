// Unit tests for the gate-fusion execution pipeline: planner run boundaries
// (measure/reset/barrier/conditional), the fused-run qubit cap, structure
// classification (diagonal / permutation / controlled), the specialized
// statevector kernels against the generic apply_matrix reference, the
// UnitarySimulator fusion-on/off pinning, and the thread/fusion invariance
// of fixed-seed counts. Runs under the `parallel` CTest label so TSan
// race-checks the fused kernels.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/circuit.hpp"
#include "core/matrix.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "sim/fusion.hpp"
#include "sim/simd.hpp"
#include "sim/simulator.hpp"
#include "sim/statevector.hpp"

namespace qtc::sim {
namespace {

using Kind = FusedOp::Kind;

/// Restores the fusion env/default behavior on scope exit so tests cannot
/// leak a programmatic override into each other.
struct FusionGuard {
  ~FusionGuard() {
    set_fusion_enabled(-1);
    set_fusion_max_qubits(0);
    set_fusion_cost_model(-1);
    simd::set_simd_enabled(-1);
  }
};

/// Universal random mix over n qubits (no measurements).
QuantumCircuit random_gates(int n, int gates, std::uint64_t seed) {
  Rng rng(seed);
  QuantumCircuit qc(n, n);
  for (int g = 0; g < gates; ++g) {
    const int q = static_cast<int>(rng.index(n));
    const int q2 = (q + 1 + static_cast<int>(rng.index(n - 1))) % n;
    switch (rng.index(8)) {
      case 0:
        qc.h(q);
        break;
      case 1:
        qc.t(q);
        break;
      case 2:
        qc.rz(rng.uniform(-PI, PI), q);
        break;
      case 3:
        qc.u(rng.uniform(0, PI), rng.uniform(-PI, PI), rng.uniform(-PI, PI),
             q);
        break;
      case 4:
        qc.cz(q, q2);
        break;
      case 5:
        qc.swap(q, q2);
        break;
      case 6:
        qc.crx(rng.uniform(-PI, PI), q, q2);
        break;
      default:
        qc.cx(q, q2);
    }
  }
  return qc;
}

int max_fused_width(const FusedCircuit& plan) {
  int w = 0;
  for (const auto& f : plan.ops)
    if (f.kind != Kind::Op) w = std::max(w, static_cast<int>(f.qubits.size()));
  return w;
}

// --- planner ----------------------------------------------------------------

TEST(FusionPlanner, MergesAdjacentRunIntoOneSweep) {
  FusionGuard guard;
  set_fusion_enabled(1);
  QuantumCircuit qc(2);
  qc.t(0).rz(0.3, 0).cz(0, 1).s(1);
  const FusedCircuit plan = fuse_circuit(qc);
  EXPECT_EQ(plan.source_unitary_gates, 4);
  EXPECT_EQ(plan.state_sweeps, 1);
  EXPECT_EQ(plan.fused_runs, 1);
  ASSERT_EQ(plan.ops.size(), 1u);
  EXPECT_EQ(plan.ops[0].source_gates, 4);
}

TEST(FusionPlanner, CostModelRejectsUnprofitableDenseMerge) {
  FusionGuard guard;
  set_fusion_enabled(1);
  // H makes the fused 2-qubit matrix dense, and a dense 4x4 sweep costs more
  // than the three cheap sweeps it would replace — so the planner must back
  // off and re-partition: the same-qubit H·T still collapses into one 2x2,
  // the CX keeps its dedicated kernel, and the RZ stays a lone 1q gate.
  QuantumCircuit qc(2);
  qc.h(0).t(0).cx(0, 1).rz(0.3, 1);
  const FusedCircuit plan = fuse_circuit(qc);
  EXPECT_EQ(plan.source_unitary_gates, 4);
  ASSERT_EQ(plan.ops.size(), 3u);
  EXPECT_EQ(plan.ops[0].kind, Kind::Gate1Q);
  EXPECT_EQ(plan.ops[0].source_gates, 2);
  EXPECT_EQ(plan.ops[1].kind, Kind::GateCX);
  EXPECT_EQ(plan.ops[2].kind, Kind::Gate1Q);
  EXPECT_EQ(plan.state_sweeps, 3);
  EXPECT_EQ(plan.fused_runs, 1);
}

TEST(FusionPlanner, RespectsQubitCap) {
  FusionGuard guard;
  set_fusion_enabled(1);
  QuantumCircuit qc(6);
  for (int rep = 0; rep < 3; ++rep)
    for (int q = 0; q + 1 < 6; ++q) qc.cz(q, q + 1).rz(0.1 * (q + 1), q);
  const FusedCircuit plan = fuse_circuit(qc);
  EXPECT_LE(max_fused_width(plan), 3);
  EXPECT_LT(plan.state_sweeps, plan.source_unitary_gates);

  set_fusion_max_qubits(2);
  const FusedCircuit narrow = fuse_circuit(qc);
  EXPECT_LE(max_fused_width(narrow), 2);
  EXPECT_GE(narrow.state_sweeps, plan.state_sweeps);
}

TEST(FusionPlanner, MaxQubitsKnobIsClamped) {
  FusionGuard guard;
  set_fusion_max_qubits(99);
  EXPECT_EQ(fusion_config().max_qubits, kMaxFusionQubits);
  set_fusion_max_qubits(0);  // restore env/default
  EXPECT_EQ(fusion_config().max_qubits, 3);
}

TEST(FusionPlanner, BreaksRunsAtMeasureResetAndConditional) {
  FusionGuard guard;
  set_fusion_enabled(1);
  QuantumCircuit qc(2, 2);
  qc.h(0).t(0);
  qc.measure(0, 0);
  qc.h(0).t(0);
  qc.reset(0);
  qc.h(0).t(0);
  qc.x(1).c_if(0, 1);
  qc.h(0).t(0);
  const FusedCircuit plan = fuse_circuit(qc);
  // 4 fused runs separated by measure / reset / conditioned-X passthroughs.
  ASSERT_EQ(plan.ops.size(), 7u);
  EXPECT_EQ(plan.ops[0].source_gates, 2);
  EXPECT_EQ(plan.ops[1].kind, Kind::Op);
  EXPECT_EQ(plan.ops[1].op.kind, OpKind::Measure);
  EXPECT_EQ(plan.ops[3].kind, Kind::Op);
  EXPECT_EQ(plan.ops[3].op.kind, OpKind::Reset);
  EXPECT_EQ(plan.ops[5].kind, Kind::Op);
  EXPECT_TRUE(plan.ops[5].op.conditioned());
  EXPECT_EQ(plan.state_sweeps, 4);
  EXPECT_EQ(plan.fused_runs, 4);
}

TEST(FusionPlanner, BarrierCutsARunButIsDropped) {
  FusionGuard guard;
  set_fusion_enabled(1);
  QuantumCircuit qc(1);
  qc.h(0).t(0);
  qc.barrier();
  qc.h(0).t(0);
  const FusedCircuit plan = fuse_circuit(qc);
  ASSERT_EQ(plan.ops.size(), 2u);
  EXPECT_NE(plan.ops[0].kind, Kind::Op);
  EXPECT_NE(plan.ops[1].kind, Kind::Op);
  EXPECT_EQ(plan.state_sweeps, 2);
}

TEST(FusionPlanner, DisabledPlanIsPurePassthrough) {
  FusionGuard guard;
  set_fusion_enabled(0);
  QuantumCircuit qc(3, 3);
  qc.h(0).cx(0, 1).rz(0.5, 2).measure_all();
  const FusedCircuit plan = fuse_circuit(qc);
  for (const auto& f : plan.ops) EXPECT_EQ(f.kind, Kind::Op);
  EXPECT_EQ(plan.state_sweeps, plan.source_unitary_gates);
  EXPECT_EQ(plan.fused_runs, 0);
}

// --- cost model -------------------------------------------------------------

TEST(FusionCost, TableFollowsSimdEngineUnlessForced) {
  FusionGuard guard;
  set_fusion_enabled(1);
  QuantumCircuit qc(2);
  qc.h(0).cx(0, 1);
  set_fusion_cost_model(0);
  EXPECT_FALSE(fuse_circuit(qc).vector_costs);
  set_fusion_cost_model(1);
  EXPECT_TRUE(fuse_circuit(qc).vector_costs);
  set_fusion_cost_model(-1);  // auto: track the engine state
  simd::set_simd_enabled(0);
  EXPECT_FALSE(fuse_circuit(qc).vector_costs);
  simd::set_simd_enabled(1);
  EXPECT_EQ(fuse_circuit(qc).vector_costs, simd::vector_available());
}

TEST(FusionCost, VectorTableRejectsAMergeTheScalarTableAccepts) {
  FusionGuard guard;
  set_fusion_enabled(1);
  // Five generic 1q rotations and two CXs over a 3-qubit union. Scalar
  // ledger: the members cost 5*1.0 + 2*0.35 = 5.7 sweeps and the dense
  // 3-qubit kernel 5.6 — a (narrow) win, merge accepted. Vector ledger: the
  // members compress to 5*1.0 + 2*0.55 = 6.1 relative 1q units while the
  // gather-bound dense 3q kernel costs 11.0 — a clear loss, so the planner
  // must re-partition at two qubits instead. Same circuit, same kernels
  // available; only the calibration decides.
  QuantumCircuit qc(3);
  qc.u(0.3, 0.7, -0.4, 0).u(1.1, -0.2, 0.5, 1);
  qc.cx(0, 1);
  qc.u(0.9, 0.3, 1.3, 2);
  qc.cx(1, 2);
  qc.u(-0.6, 1.4, 0.2, 0).u(0.8, -1.0, 0.6, 1);

  set_fusion_cost_model(0);
  const FusedCircuit scalar = fuse_circuit(qc);
  ASSERT_EQ(scalar.ops.size(), 1u);
  EXPECT_EQ(scalar.ops[0].kind, Kind::Matrix);
  EXPECT_EQ(scalar.ops[0].source_gates, 7);
  EXPECT_NEAR(scalar.unfused_cost, 5.7, 1e-12);
  EXPECT_NEAR(scalar.planned_cost, 5.6, 1e-12);

  set_fusion_cost_model(1);
  const FusedCircuit vec = fuse_circuit(qc);
  EXPECT_GT(vec.ops.size(), 1u);
  EXPECT_LE(max_fused_width(vec), 2) << "re-partition runs at cap k-1";
  EXPECT_NEAR(vec.unfused_cost, 6.1, 1e-12);
  EXPECT_LE(vec.planned_cost, vec.unfused_cost);
}

TEST(FusionCost, PlannedCostNeverExceedsUnfusedCost) {
  FusionGuard guard;
  set_fusion_enabled(1);
  for (int model = 0; model <= 1; ++model) {
    set_fusion_cost_model(model);
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      const int n = 2 + static_cast<int>(seed % 5);
      const FusedCircuit plan = fuse_circuit(random_gates(n, 40, seed));
      EXPECT_EQ(plan.vector_costs, model == 1);
      EXPECT_GT(plan.unfused_cost, 0.0);
      EXPECT_LE(plan.planned_cost, plan.unfused_cost + 1e-9)
          << "model=" << model << " seed=" << seed;
    }
  }
}

// --- classification ---------------------------------------------------------

TEST(FusionPlanner, PhaseRunClassifiesAsDiagonal) {
  FusionGuard guard;
  set_fusion_enabled(1);
  QuantumCircuit qc(2);
  qc.rz(0.3, 0).rz(-1.1, 1).cz(0, 1).cp(0.7, 0, 1).t(0).s(1);
  const FusedCircuit plan = fuse_circuit(qc);
  ASSERT_EQ(plan.ops.size(), 1u);
  EXPECT_EQ(plan.ops[0].kind, Kind::Diagonal);
  EXPECT_EQ(plan.diagonal_ops, 1);
  EXPECT_EQ(plan.ops[0].diag.size(), 4u);
}

TEST(FusionPlanner, XLikeRunClassifiesAsPhaseFreePermutation) {
  FusionGuard guard;
  set_fusion_enabled(1);
  QuantumCircuit qc(2);
  qc.x(0).cx(0, 1).swap(0, 1).x(1);
  const FusedCircuit plan = fuse_circuit(qc);
  ASSERT_EQ(plan.ops.size(), 1u);
  EXPECT_EQ(plan.ops[0].kind, Kind::Permutation);
  EXPECT_TRUE(plan.ops[0].phases.empty()) << "pure remap needs no arithmetic";
  EXPECT_EQ(plan.permutation_ops, 1);
}

TEST(FusionPlanner, YRunClassifiesAsPermutationWithPhases) {
  FusionGuard guard;
  set_fusion_enabled(1);
  QuantumCircuit qc(2);
  qc.y(0).x(1).cy(1, 0);
  const FusedCircuit plan = fuse_circuit(qc);
  ASSERT_EQ(plan.ops.size(), 1u);
  EXPECT_EQ(plan.ops[0].kind, Kind::Permutation);
  EXPECT_FALSE(plan.ops[0].phases.empty());
}

TEST(FusionPlanner, ControlledRotationRunClassifiesAsControlled) {
  FusionGuard guard;
  set_fusion_enabled(1);
  QuantumCircuit qc(2);
  qc.crx(0.7, 0, 1).crx(0.4, 0, 1);
  const FusedCircuit plan = fuse_circuit(qc);
  ASSERT_EQ(plan.ops.size(), 1u);
  EXPECT_EQ(plan.ops[0].kind, Kind::Controlled);
  EXPECT_EQ(plan.ops[0].num_controls, 1);
  EXPECT_EQ(plan.ops[0].qubits[0], 0) << "control must lead the qubit list";
  EXPECT_EQ(plan.controlled_ops, 1);
}

TEST(FusionPlanner, LoneToffoliIsAPermutation) {
  FusionGuard guard;
  set_fusion_enabled(1);
  QuantumCircuit qc(3);
  qc.ccx(0, 1, 2);
  const FusedCircuit plan = fuse_circuit(qc);
  ASSERT_EQ(plan.ops.size(), 1u);
  EXPECT_EQ(plan.ops[0].kind, Kind::Permutation);
  EXPECT_TRUE(plan.ops[0].phases.empty());
}

// --- matrix classification helpers (core) -----------------------------------

TEST(MatrixClassify, PermutationFormRoundTrips) {
  // CX: |00>->|00>, |01>->|11>, |10>->|10>, |11>->|01> (q0 = control).
  const Matrix cx = op_matrix(OpKind::CX);
  const auto form = as_permutation_form(cx);
  ASSERT_TRUE(form.has_value());
  EXPECT_TRUE(form->phase_free);
  EXPECT_EQ(form->row_of[1], 3u);
  EXPECT_EQ(form->row_of[3], 1u);
  EXPECT_FALSE(as_permutation_form(op_matrix(OpKind::H)).has_value());
}

TEST(MatrixClassify, ControlBitsAndResidual) {
  const Matrix crx = op_matrix(OpKind::CRX, {0.8});
  const auto bits = matrix_control_bits(crx);
  ASSERT_EQ(bits.size(), 1u);
  EXPECT_EQ(bits[0], 0);  // control is the least significant gate-local bit
  const Matrix residual = matrix_controlled_residual(crx, bits);
  EXPECT_TRUE(residual.approx_equal(op_matrix(OpKind::RX, {0.8}), 1e-12));
  EXPECT_TRUE(matrix_control_bits(op_matrix(OpKind::H)).empty());
}

// --- specialized kernels vs the generic reference ---------------------------

Statevector random_state(int n, std::uint64_t seed) {
  Statevector sv(n);
  sv.apply_circuit(random_gates(n, 4 * n, seed).unitary_part());
  return sv;
}

TEST(FusionKernels, DiagonalMatchesApplyMatrix) {
  Rng rng(11);
  const std::vector<int> qs = {1, 4, 2};
  Matrix dm(8, 8);
  std::vector<cplx> diag(8);
  for (int j = 0; j < 8; ++j) {
    const double phi = rng.uniform(-PI, PI);
    diag[j] = cplx{std::cos(phi), std::sin(phi)};
    dm(j, j) = diag[j];
  }
  Statevector a = random_state(6, 5);
  Statevector b = a;
  a.apply_matrix(dm, qs);
  b.apply_diagonal(diag, qs);
  EXPECT_LT(max_abs_diff(a.amplitudes(), b.amplitudes()), 1e-12);
}

TEST(FusionKernels, PermutationMatchesApplyMatrix) {
  const std::vector<int> qs = {3, 0};
  // Gate-local cycle 0->1->2->3->0 with phases i, 1, -1, 1.
  const std::vector<std::uint32_t> row_of = {1, 2, 3, 0};
  const std::vector<cplx> phases = {{0, 1}, {1, 0}, {-1, 0}, {1, 0}};
  Matrix pm(4, 4);
  for (int c = 0; c < 4; ++c) pm(row_of[c], c) = phases[c];
  Statevector a = random_state(5, 6);
  Statevector b = a;
  Statevector c = a;
  a.apply_matrix(pm, qs);
  b.apply_permutation(row_of, phases, qs);
  EXPECT_LT(max_abs_diff(a.amplitudes(), b.amplitudes()), 1e-12);
  // Phase-free remap path.
  Matrix swap_m = op_matrix(OpKind::SWAP);
  const auto form = as_permutation_form(swap_m);
  ASSERT_TRUE(form.has_value() && form->phase_free);
  Statevector d = c;
  c.apply_matrix(swap_m, qs);
  d.apply_permutation(form->row_of, {}, qs);
  EXPECT_LT(max_abs_diff(c.amplitudes(), d.amplitudes()), 1e-12);
}

TEST(FusionKernels, ControlledMatchesApplyMatrix) {
  const Matrix u = u3_matrix(1.2, 0.4, -0.9);
  // Full 8x8 doubly controlled-U with controls on gate-local bits 0 and 1.
  Matrix full = Matrix::identity(8);
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 2; ++c) full(3 + 4 * r, 3 + 4 * c) = u(r, c);
  Statevector a = random_state(6, 7);
  Statevector b = a;
  a.apply_matrix(full, {0, 2, 5});
  // Braced lists would prefer the packed (qubits, num_controls) overload —
  // {5} converts to int — so spell the vectors out.
  b.apply_controlled_matrix(u, std::vector<int>{0, 2}, std::vector<int>{5});
  EXPECT_LT(max_abs_diff(a.amplitudes(), b.amplitudes()), 1e-12);
}

// --- end-to-end equivalence and determinism ----------------------------------

TEST(Fusion, StatevectorMatchesUnfusedOnRandomCircuits) {
  FusionGuard guard;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const int n = 2 + static_cast<int>(seed % 6);
    const QuantumCircuit qc = random_gates(n, 30, seed);
    StatevectorSimulator sim;
    set_fusion_enabled(0);
    const auto off = sim.statevector(qc).amplitudes();
    set_fusion_enabled(1);
    const auto on = sim.statevector(qc).amplitudes();
    EXPECT_LT(max_abs_diff(off, on), 1e-10) << "seed " << seed;
  }
}

TEST(Fusion, WiderCapStillMatches) {
  FusionGuard guard;
  set_fusion_enabled(1);
  for (int cap = 1; cap <= kMaxFusionQubits; ++cap) {
    set_fusion_max_qubits(cap);
    const QuantumCircuit qc = random_gates(7, 40, 99);
    StatevectorSimulator sim;
    const auto on = sim.statevector(qc).amplitudes();
    set_fusion_enabled(0);
    const auto off = sim.statevector(qc).amplitudes();
    set_fusion_enabled(1);
    EXPECT_LT(max_abs_diff(off, on), 1e-10) << "cap " << cap;
  }
}

/// Satellite pinning test: UnitarySimulator builds its matrix through the
/// fused plan; fusion on/off must give the same unitary.
TEST(Fusion, UnitarySimulatorIdenticalOnOff) {
  FusionGuard guard;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const int n = 2 + static_cast<int>(seed % 4);
    const QuantumCircuit qc = random_gates(n, 25, seed).unitary_part();
    UnitarySimulator us;
    set_fusion_enabled(0);
    const Matrix off = us.unitary(qc);
    set_fusion_enabled(1);
    const Matrix on = us.unitary(qc);
    EXPECT_LT(off.max_abs_diff(on), 1e-11) << "seed " << seed;
  }
}

TEST(Fusion, FixedSeedCountsIdenticalOnOffAndAcrossThreads) {
  FusionGuard guard;
  // Sampling-friendly circuit and a per-shot circuit (mid-circuit measure +
  // conditioned gate), both with a fixed seed: counts must be identical with
  // fusion on/off and at 1 vs 4 threads.
  QuantumCircuit sampling = random_gates(6, 40, 21);
  sampling.measure_all();
  QuantumCircuit per_shot(3, 3);
  per_shot.h(0).t(1).cx(0, 1);
  per_shot.measure(0, 0);
  per_shot.x(2).c_if(0, 1);
  per_shot.h(1).rz(0.4, 2).cx(1, 2);
  per_shot.measure(1, 1);
  per_shot.measure(2, 2);
  for (const auto& qc : {sampling, per_shot}) {
    std::map<std::string, int> reference;
    bool have_reference = false;
    for (int fusion = 0; fusion <= 1; ++fusion) {
      set_fusion_enabled(fusion);
      for (int threads : {1, 4}) {
        parallel::set_num_threads(threads);
        StatevectorSimulator sim(4242);
        const auto counts = sim.run(qc, 2000).counts;
        if (!have_reference) {
          reference = counts.histogram;
          have_reference = true;
        } else {
          EXPECT_EQ(counts.histogram, reference)
              << "fusion=" << fusion << " threads=" << threads;
        }
      }
    }
  }
  parallel::set_num_threads(0);
}

}  // namespace
}  // namespace qtc::sim
