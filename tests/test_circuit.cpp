#include "core/circuit.hpp"

#include <gtest/gtest.h>

namespace qtc {
namespace {

/// The paper's Fig. 1 circuit (4 qubits, 8 gates).
QuantumCircuit fig1_circuit() {
  QuantumCircuit qc(4);
  qc.h(2).cx(2, 3).cx(0, 1).h(1).cx(1, 2).t(0).cx(2, 0).cx(0, 1);
  return qc;
}

TEST(Circuit, DefaultRegistersNamedQAndC) {
  QuantumCircuit qc(3, 2);
  ASSERT_EQ(qc.qregs().size(), 1u);
  EXPECT_EQ(qc.qregs()[0].name, "q");
  EXPECT_EQ(qc.qregs()[0].size, 3);
  EXPECT_EQ(qc.cregs()[0].name, "c");
  EXPECT_EQ(qc.num_qubits(), 3);
  EXPECT_EQ(qc.num_clbits(), 2);
}

TEST(Circuit, MultipleRegistersGetContiguousOffsets) {
  QuantumCircuit qc;
  qc.add_qreg("a", 2);
  qc.add_qreg("b", 3);
  EXPECT_EQ(qc.num_qubits(), 5);
  EXPECT_EQ(qc.qregs()[1].offset, 2);
  EXPECT_EQ(qc.find_qreg("b"), 1);
  EXPECT_EQ(qc.find_qreg("nope"), -1);
}

TEST(Circuit, DuplicateRegisterNameThrows) {
  QuantumCircuit qc;
  qc.add_qreg("a", 2);
  EXPECT_THROW(qc.add_qreg("a", 1), std::invalid_argument);
}

TEST(Circuit, Fig1HasExpectedGateCounts) {
  const QuantumCircuit qc = fig1_circuit();
  EXPECT_EQ(qc.size(), 8u);
  EXPECT_EQ(qc.count(OpKind::CX), 5);
  EXPECT_EQ(qc.count(OpKind::H), 2);
  EXPECT_EQ(qc.count(OpKind::T), 1);
  EXPECT_EQ(qc.two_qubit_gate_count(), 5);
  const auto counts = qc.count_ops();
  EXPECT_EQ(counts.at("cx"), 5);
  EXPECT_EQ(counts.at("h"), 2);
}

TEST(Circuit, DepthOfSerialAndParallelGates) {
  QuantumCircuit qc(2);
  qc.h(0).h(1);  // parallel
  EXPECT_EQ(qc.depth(), 1);
  qc.cx(0, 1);
  EXPECT_EQ(qc.depth(), 2);
  qc.h(0);
  EXPECT_EQ(qc.depth(), 3);
}

TEST(Circuit, BarrierSynchronizesButAddsNoDepth) {
  QuantumCircuit qc(2);
  qc.h(0);
  qc.barrier();
  qc.h(1);
  // Without the barrier h(1) would be level 1; the barrier pushes it after
  // h(0) but contributes no level of its own.
  EXPECT_EQ(qc.depth(), 2);
}

TEST(Circuit, QubitOutOfRangeThrows) {
  QuantumCircuit qc(2);
  EXPECT_THROW(qc.h(2), std::out_of_range);
  EXPECT_THROW(qc.cx(0, 5), std::out_of_range);
  EXPECT_THROW(qc.h(-1), std::out_of_range);
}

TEST(Circuit, DuplicateOperandThrows) {
  QuantumCircuit qc(2);
  EXPECT_THROW(qc.cx(1, 1), std::invalid_argument);
}

TEST(Circuit, MeasureRequiresClbitInRange) {
  QuantumCircuit qc(2, 1);
  qc.measure(0, 0);
  EXPECT_THROW(qc.measure(1, 1), std::out_of_range);
}

TEST(Circuit, MeasureAllNeedsEnoughClbits) {
  QuantumCircuit qc(3, 2);
  EXPECT_THROW(qc.measure_all(), std::invalid_argument);
  QuantumCircuit ok(3, 3);
  ok.measure_all();
  EXPECT_EQ(ok.count(OpKind::Measure), 3);
}

TEST(Circuit, CIfConditionsLastOp) {
  QuantumCircuit qc(2, 2);
  qc.measure(0, 0);
  qc.x(1).c_if(0, 1);
  EXPECT_TRUE(qc.ops().back().conditioned());
  EXPECT_EQ(qc.ops().back().cond_val, 1u);
  EXPECT_TRUE(qc.has_conditionals());
}

TEST(Circuit, CIfWithoutOpsThrows) {
  QuantumCircuit qc(1, 1);
  EXPECT_THROW(qc.c_if(0, 1), std::logic_error);
}

TEST(Circuit, InverseReversesAndInverts) {
  QuantumCircuit qc(2);
  qc.h(0).t(1).cx(0, 1);
  const QuantumCircuit inv = qc.inverse();
  ASSERT_EQ(inv.size(), 3u);
  EXPECT_EQ(inv.ops()[0].kind, OpKind::CX);
  EXPECT_EQ(inv.ops()[1].kind, OpKind::Tdg);
  EXPECT_EQ(inv.ops()[2].kind, OpKind::H);
}

TEST(Circuit, InverseOfMeasuredCircuitThrows) {
  QuantumCircuit qc(1, 1);
  qc.h(0).measure(0, 0);
  EXPECT_THROW(qc.inverse(), std::invalid_argument);
}

TEST(Circuit, RemappedRelabelsQubits) {
  QuantumCircuit qc(2);
  qc.cx(0, 1);
  const QuantumCircuit moved = qc.remapped({3, 1}, 4);
  EXPECT_EQ(moved.num_qubits(), 4);
  EXPECT_EQ(moved.ops()[0].qubits[0], 3);
  EXPECT_EQ(moved.ops()[0].qubits[1], 1);
}

TEST(Circuit, RemappedValidatesLayout) {
  QuantumCircuit qc(2);
  qc.h(0);
  EXPECT_THROW(qc.remapped({0}, 2), std::invalid_argument);
  EXPECT_THROW(qc.remapped({0, 5}, 2), std::out_of_range);
}

TEST(Circuit, ComposeAppendsOps) {
  QuantumCircuit a(2, 1), b(2, 1);
  a.h(0);
  b.cx(0, 1);
  b.measure(0, 0);
  a.compose(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(a.has_measurements());
}

TEST(Circuit, ComposeRejectsLargerCircuit) {
  QuantumCircuit a(1), b(2);
  b.h(1);
  EXPECT_THROW(a.compose(b), std::invalid_argument);
}

TEST(Circuit, UnitaryPartDropsMeasureAndBarrier) {
  QuantumCircuit qc(2, 2);
  qc.h(0).barrier().cx(0, 1).measure_all();
  const QuantumCircuit u = qc.unitary_part();
  EXPECT_EQ(u.size(), 2u);
  EXPECT_FALSE(u.has_measurements());
}

TEST(Circuit, DrawerRendersEveryQubitRow) {
  const QuantumCircuit qc = fig1_circuit();
  const std::string art = qc.to_string();
  EXPECT_NE(art.find("q[0]"), std::string::npos);
  EXPECT_NE(art.find("q[3]"), std::string::npos);
  EXPECT_NE(art.find("H"), std::string::npos);
  EXPECT_NE(art.find("T"), std::string::npos);
  EXPECT_NE(art.find("*"), std::string::npos);  // CX controls
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
}

TEST(Circuit, DrawerShowsMeasurementTarget) {
  QuantumCircuit qc(1, 1);
  qc.h(0).measure(0, 0);
  EXPECT_NE(qc.to_string().find("M->0"), std::string::npos);
}

}  // namespace
}  // namespace qtc
