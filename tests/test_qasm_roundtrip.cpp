// QASM round-trip property test: for ~200 seeded random circuits drawn over
// the FULL gate vocabulary (every OpKind, all arities and parameter counts,
// plus measure/reset/barrier/conditionals and multi-register layouts),
// parse(emit(c)) must reproduce c exactly — same registers, same operation
// sequence, params compared as exact doubles (emit uses %.17g, which
// round-trips IEEE doubles). This is the structural-equality contract
// declared on QuantumCircuit::operator==.

#include <gtest/gtest.h>

#include <vector>

#include "core/circuit.hpp"
#include "core/gates.hpp"
#include "core/rng.hpp"
#include "core/types.hpp"
#include "qasm/parser.hpp"

namespace qtc {
namespace {

/// Every unitary kind, enumerable because the enum is contiguous from I to
/// CSWAP (gates.hpp declares Measure/Reset/Barrier after the unitaries).
std::vector<OpKind> unitary_kinds() {
  std::vector<OpKind> kinds;
  for (int k = static_cast<int>(OpKind::I); k <= static_cast<int>(OpKind::CSWAP);
       ++k)
    kinds.push_back(static_cast<OpKind>(k));
  return kinds;
}

/// Pick `count` distinct qubits out of n.
std::vector<Qubit> distinct_qubits(Rng& rng, int n, int count) {
  std::vector<Qubit> pool(n);
  for (int i = 0; i < n; ++i) pool[i] = i;
  for (int i = 0; i < count; ++i)
    std::swap(pool[i], pool[i + rng.index(n - i)]);
  pool.resize(count);
  return pool;
}

/// Random circuit over the full instruction set. Roughly one op in six is a
/// measure / reset / barrier / conditioned op so the structural instructions
/// round-trip too, not just the gate vocabulary.
QuantumCircuit random_full_circuit(std::uint64_t seed) {
  static const std::vector<OpKind> kinds = unitary_kinds();
  Rng rng(seed * 6364136223846793005ULL + 1442695040888963407ULL);
  const int n = 3 + static_cast<int>(rng.index(4));  // 3..6 qubits
  const int ops = 10 + static_cast<int>(rng.index(21));
  QuantumCircuit qc(n, n);
  for (int g = 0; g < ops; ++g) {
    switch (rng.index(12)) {
      case 0:
        qc.measure(static_cast<int>(rng.index(n)),
                   static_cast<int>(rng.index(n)));
        break;
      case 1:
        qc.reset(static_cast<int>(rng.index(n)));
        break;
      case 2: {
        // Barrier over a random non-empty subset (emit prints the list).
        const int width = 1 + static_cast<int>(rng.index(n));
        qc.barrier(distinct_qubits(rng, n, width));
        break;
      }
      default: {
        const OpKind kind = kinds[rng.index(kinds.size())];
        std::vector<double> params(op_num_params(kind));
        for (double& p : params) p = rng.uniform(-2 * PI, 2 * PI);
        qc.gate(kind, distinct_qubits(rng, n, op_num_qubits(kind)),
                std::move(params));
      }
    }
    // Occasionally condition the op just appended on the classical register
    // (not barriers: OpenQASM `if` applies to quantum operations only).
    if (rng.index(8) == 0 && qc.ops().back().kind != OpKind::Barrier)
      qc.c_if(0, rng.index(std::uint64_t{1} << n));
  }
  return qc;
}

TEST(QasmRoundtrip, ParseEmitIdentityOnRandomFullGateSetCircuits) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const QuantumCircuit qc = random_full_circuit(seed);
    const std::string text = qasm::emit(qc);
    QuantumCircuit back;
    ASSERT_NO_THROW(back = qasm::parse(text)) << "seed " << seed << "\n"
                                              << text;
    EXPECT_EQ(back, qc) << "round trip changed the circuit, seed " << seed
                        << "\n"
                        << text;
  }
}

TEST(QasmRoundtrip, EmitIsIdempotent) {
  // emit(parse(emit(c))) == emit(c): the emitted spelling is a fixed point,
  // so diffing emitted files is meaningful.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const QuantumCircuit qc = random_full_circuit(seed * 37 + 11);
    const std::string once = qasm::emit(qc);
    EXPECT_EQ(qasm::emit(qasm::parse(once)), once) << "seed " << seed;
  }
}

TEST(QasmRoundtrip, MultiRegisterCircuitRoundTrips) {
  QuantumCircuit qc;
  qc.add_qreg("alpha", 2);
  qc.add_qreg("beta", 3);
  qc.add_creg("m", 2);
  qc.add_creg("flag", 1);
  qc.h(0).cx(0, 2).ccx(1, 2, 3).rz(0.25, 4);
  qc.measure(0, 0);
  qc.measure(2, 1);
  qc.x(4).c_if(1, 1);  // conditioned on creg "flag"
  qc.measure(4, 2);
  EXPECT_EQ(qasm::parse(qasm::emit(qc)), qc);
}

TEST(QasmRoundtrip, ExtremeParametersSurviveExactly) {
  // %.17g must reproduce doubles bit for bit, including subnormal-ish and
  // near-pi values whose decimal expansions don't terminate.
  QuantumCircuit qc(2, 2);
  qc.rz(PI, 0);
  qc.rx(1e-300, 1);
  qc.u(0.1 + 0.2, -PI / 3, 1.0 / 3.0, 0);
  qc.cp(-0.0, 0, 1);
  qc.measure_all();
  const QuantumCircuit back = qasm::parse(qasm::emit(qc));
  ASSERT_EQ(back.ops().size(), qc.ops().size());
  EXPECT_EQ(back, qc);
}

}  // namespace
}  // namespace qtc
