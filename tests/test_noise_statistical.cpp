// Statistical-equivalence harness for the Monte-Carlo trajectory engine:
// the density-matrix simulator evolves the exact mixed state, its diagonal
// (folded through the classical readout-error channel) is the ground-truth
// outcome distribution, and the parallel trajectory counts must match it
// under both a chi-square goodness-of-fit bound and a total-variation bound.
// All seeds are fixed, so every assertion is deterministic; the thresholds
// are generous enough to never flake yet far below what a wrong engine
// (missing channel, readout applied twice, broken Kraus sampling) produces.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "arch/backend.hpp"
#include "exec/execute.hpp"
#include "noise/channel.hpp"
#include "noise/density_matrix.hpp"
#include "noise/noise_model.hpp"
#include "noise/trajectory.hpp"
#include "sim/result.hpp"
#include "sim/statevector.hpp"

namespace qtc::noise {
namespace {

/// Exact outcome distribution over classical bitstrings: density-matrix
/// diagonal, pushed through the measurement wiring and the per-qubit
/// readout-error channel. Requires a measure-final circuit (no reset or
/// conditionals), which every circuit in this file is.
std::map<std::string, double> exact_distribution(const QuantumCircuit& qc,
                                                 const NoiseModel& noise) {
  DensityMatrixSimulator dms;
  const DensityMatrix rho = dms.evolve(qc, noise);
  const std::vector<double> probs = rho.probabilities();
  std::vector<std::pair<int, int>> meas;  // (qubit, clbit)
  for (const auto& op : qc.ops())
    if (op.kind == OpKind::Measure)
      meas.emplace_back(op.qubits[0], op.clbits[0]);
  const int m = static_cast<int>(meas.size());
  const int ncl = qc.num_clbits();
  std::map<std::string, double> dist;
  for (std::size_t b = 0; b < probs.size(); ++b) {
    const double p = probs[b];
    if (p <= 0) continue;
    // Spread this basis state over every readout-flip combination.
    for (std::uint64_t reads = 0; reads < (std::uint64_t{1} << m); ++reads) {
      double weight = p;
      std::uint64_t clbits = 0;
      for (int i = 0; i < m; ++i) {
        const auto [q, c] = meas[i];
        const int state_bit = static_cast<int>((b >> q) & 1);
        const int read_bit = static_cast<int>((reads >> i) & 1);
        const ReadoutError* re = noise.readout_error(q);
        const double p_read_one =
            state_bit ? (re ? 1.0 - re->p0_given_1 : 1.0)
                      : (re ? re->p1_given_0 : 0.0);
        weight *= read_bit ? p_read_one : 1.0 - p_read_one;
        if (read_bit) clbits |= std::uint64_t{1} << c;
      }
      if (weight > 0) dist[sim::format_bits(clbits, ncl)] += weight;
    }
  }
  return dist;
}

struct GoodnessOfFit {
  double chi2 = 0;
  int df = 0;          // pooled bins - 1
  double tv = 0;       // total-variation distance
  double pooled = 0;   // expected mass pooled into the rare-outcome bin
};

/// Pearson chi-square against the exact distribution. Outcomes whose
/// expected count is below 5 are pooled into one rare-outcome bin (the
/// standard validity condition for the chi-square approximation).
GoodnessOfFit goodness_of_fit(const sim::Counts& counts,
                              const std::map<std::string, double>& expected) {
  GoodnessOfFit g;
  const double shots = counts.shots;
  double rare_expected = 0;
  int rare_observed = 0;
  int bins = 0;
  for (const auto& [bits, p] : expected) {
    const int observed = counts.count(bits);
    g.tv += std::abs(observed / shots - p);
    const double e = p * shots;
    if (e < 5.0) {
      rare_expected += e;
      rare_observed += observed;
      continue;
    }
    g.chi2 += (observed - e) * (observed - e) / e;
    ++bins;
  }
  // Counts outside the expected support belong to the rare bin too (the
  // exact distribution assigns them ~0; a real engine bug lands here).
  for (const auto& [bits, c] : counts.histogram)
    if (!expected.count(bits)) {
      rare_observed += c;
      g.tv += static_cast<double>(c) / shots;
    }
  if (rare_expected > 0 || rare_observed > 0) {
    const double e = std::max(rare_expected, 0.5);  // guard the division
    g.chi2 += (rare_observed - e) * (rare_observed - e) / e;
    ++bins;
    g.pooled = rare_expected / shots;
  }
  g.df = bins > 1 ? bins - 1 : 1;
  g.tv /= 2;
  return g;
}

/// Assert the fit: chi-square below a ~5-sigma band around its mean (df)
/// and total variation below `tv_bound`.
void expect_statistical_match(const sim::Counts& counts,
                              const std::map<std::string, double>& expected,
                              double tv_bound) {
  const GoodnessOfFit g = goodness_of_fit(counts, expected);
  EXPECT_LT(g.chi2, g.df + 5 * std::sqrt(2.0 * g.df) + 10)
      << "chi-square too large (df " << g.df << ", tv " << g.tv << ")";
  EXPECT_LT(g.tv, tv_bound) << "total variation too large (chi2 " << g.chi2
                            << ", df " << g.df << ")";
}

// --- depolarizing -------------------------------------------------------------

TEST(NoiseStatistical, DepolarizedBellMatchesDensityMatrix) {
  NoiseModel model;
  model.add_all_qubit_error(depolarizing2(0.15), OpKind::CX);
  model.add_all_qubit_error(depolarizing(0.03), OpKind::H);
  QuantumCircuit qc(2, 2);
  qc.h(0).cx(0, 1).measure_all();
  TrajectorySimulator traj(101);
  const auto counts = traj.run(qc, model, 20000);
  expect_statistical_match(counts, exact_distribution(qc, model), 0.02);
}

TEST(NoiseStatistical, UniformDepolarizingRandom4qMatchesDensityMatrix) {
  const NoiseModel model = uniform_depolarizing(0.01, 0.05, 0.02);
  QuantumCircuit qc(4, 4);
  qc.h(0).cx(0, 1).t(1).cx(1, 2).rz(0.7, 2).h(3).cx(2, 3).sx(0).cx(3, 0);
  qc.measure_all();
  TrajectorySimulator traj(202);
  const auto counts = traj.run(qc, model, 20000);
  expect_statistical_match(counts, exact_distribution(qc, model), 0.03);
}

// --- amplitude damping --------------------------------------------------------

TEST(NoiseStatistical, AmplitudeDampedGhzMatchesDensityMatrix) {
  NoiseModel model;
  model.add_all_qubit_error(amplitude_damping(0.2), OpKind::H);
  model.add_all_qubit_error(
      tensor(amplitude_damping(0.12), amplitude_damping(0.12)), OpKind::CX);
  QuantumCircuit qc(3, 3);
  qc.h(0).cx(0, 1).cx(1, 2).x(2).measure_all();
  TrajectorySimulator traj(303);
  const auto counts = traj.run(qc, model, 20000);
  expect_statistical_match(counts, exact_distribution(qc, model), 0.025);
}

// --- readout noise ------------------------------------------------------------

TEST(NoiseStatistical, AsymmetricReadoutMatchesExactFolding) {
  NoiseModel model;
  model.set_readout_error(0, {0.08, 0.02});
  model.set_readout_error(1, {0.01, 0.12});
  model.set_readout_error(2, {0.05, 0.05});
  QuantumCircuit qc(3, 3);
  qc.x(0).h(1).x(2).measure_all();
  const auto expected = exact_distribution(qc, model);
  TrajectorySimulator traj(404);
  expect_statistical_match(traj.run(qc, model, 20000), expected, 0.025);
  // The density-matrix sampler applies the same readout channel when
  // sampling, so its own counts must fit its own exact diagonal as well.
  DensityMatrixSimulator dms(505);
  expect_statistical_match(dms.run(qc, model, 20000).counts, expected, 0.025);
}

// --- mixed channels, 5 qubits -------------------------------------------------

TEST(NoiseStatistical, MixedChannels5qMatchesDensityMatrix) {
  NoiseModel model;
  model.add_all_qubit_error(compose(amplitude_damping(0.05), phase_flip(0.02)),
                            OpKind::H);
  model.add_all_qubit_error(depolarizing2(0.04), OpKind::CX);
  model.set_readout_error(2, {0.03, 0.03});
  QuantumCircuit qc(5, 5);
  qc.h(0).cx(0, 1).cx(1, 2).h(3).cx(3, 4).cx(2, 3).h(4);
  qc.measure_all();
  TrajectorySimulator traj(606);
  const auto counts = traj.run(qc, model, 30000);
  expect_statistical_match(counts, exact_distribution(qc, model), 0.035);
}

// --- end-to-end backend execution --------------------------------------------

TEST(NoiseStatistical, BackendRunMatchesDensityMatrixOnCompiledCircuit) {
  // The paper's Sec. IV loop: compile for QX4, execute on the noisy backend
  // model. The trajectory counts of Backend::run must match the exact
  // density-matrix distribution of the *compiled* circuit under the
  // calibration-derived noise model.
  const arch::Backend backend = arch::qx4_backend();
  QuantumCircuit logical(2, 2);
  logical.h(0).cx(0, 1).measure_all();
  exec::ExecuteOptions options;
  options.shots = 20000;
  options.seed = 707;
  const exec::ExecuteResult result = exec::execute(logical, backend, options);
  EXPECT_EQ(result.counts.shots, options.shots);

  // Guard the harness precondition: measurements form the final layer.
  bool seen_measure = false, measure_final = true;
  for (const auto& op : result.compiled.ops()) {
    if (op.kind == OpKind::Measure) seen_measure = true;
    else if (seen_measure && op.kind != OpKind::Barrier) measure_final = false;
  }
  ASSERT_TRUE(measure_final);

  const NoiseModel model = from_backend(backend);
  expect_statistical_match(result.counts,
                           exact_distribution(result.compiled, model), 0.03);

  // Backend::run is the thin counts-only wrapper over the same engine.
  arch::Backend::RunOptions run_options;
  run_options.shots = options.shots;
  run_options.seed = options.seed;
  const sim::Counts counts = backend.run(logical, run_options);
  EXPECT_EQ(counts.histogram, result.counts.histogram);
}

}  // namespace
}  // namespace qtc::noise
