// QBIN round-trip property suite: the wire format's losslessness contract.
// For 500+ seeded random circuits over the FULL instruction vocabulary
// (every OpKind, multi-register layouts, conditionals, measure/reset/
// barrier, and parameter values from the nasty end of the IEEE range —
// denormals, -0.0, huge magnitudes), decode(encode(c)) must equal c under
// QuantumCircuit::operator== (exact double comparison), and pushing a
// circuit through qasm → qbin → qasm must be a fixed point of the QASM
// spelling. Also pinned here: the streaming Reader decodes byte-identically
// to the in-memory path at any chunk size, and the structural digest is
// parameter-blind, payload-computable, and structure-sensitive.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "core/circuit.hpp"
#include "core/gates.hpp"
#include "core/rng.hpp"
#include "core/types.hpp"
#include "qasm/parser.hpp"
#include "qbin/qbin.hpp"

namespace qtc {
namespace {

std::vector<OpKind> unitary_kinds() {
  std::vector<OpKind> kinds;
  for (int k = static_cast<int>(OpKind::I);
       k <= static_cast<int>(OpKind::CSWAP); ++k)
    kinds.push_back(static_cast<OpKind>(k));
  return kinds;
}

std::vector<Qubit> distinct_qubits(Rng& rng, int n, int count) {
  std::vector<Qubit> pool(n);
  for (int i = 0; i < n; ++i) pool[i] = i;
  for (int i = 0; i < count; ++i)
    std::swap(pool[i], pool[i + rng.index(n - i)]);
  pool.resize(count);
  return pool;
}

/// A parameter value drawn mostly from ordinary rotation angles but with a
/// deliberate tail of IEEE edge cases the %.17g path already survives and
/// the binary path must too.
double random_param(Rng& rng) {
  switch (rng.index(10)) {
    case 0: return -0.0;
    case 1: return 5e-324;             // smallest denormal
    case 2: return -2.2250738585072011e-308;  // just below DBL_MIN
    case 3: return 1.7976931348623157e308;    // DBL_MAX
    case 4: return -1e-300;
    default: return rng.uniform(-8.0, 8.0);
  }
}

/// Random circuit over the full instruction set with a random register
/// layout: qubits split across 1..3 named qregs, clbits across 1..2 cregs,
/// so register tables (not just flat indices) are exercised.
QuantumCircuit random_full_circuit(std::uint64_t seed) {
  static const std::vector<OpKind> kinds = unitary_kinds();
  Rng rng(derive_stream_seed(seed, 0));
  const int n = 3 + static_cast<int>(rng.index(5));  // 3..7 qubits
  const int nc = 2 + static_cast<int>(rng.index(3));
  QuantumCircuit qc;
  const int qsplits = 1 + static_cast<int>(rng.index(3));
  int assigned = 0;
  for (int r = 0; r < qsplits; ++r) {
    const int remaining = n - assigned;
    const int left = qsplits - 1 - r;
    const int size =
        left == 0 ? remaining
                  : 1 + static_cast<int>(rng.index(remaining - left));
    qc.add_qreg("q" + std::to_string(r), size);
    assigned += size;
  }
  if (rng.index(2) == 0) {
    qc.add_creg("c", nc);
  } else {
    qc.add_creg("m", 1 + (nc - 1) / 2);
    qc.add_creg("flag", nc - 1 - (nc - 1) / 2 + 1);
  }
  const int clbits = qc.num_clbits();
  const int ops = 10 + static_cast<int>(rng.index(30));
  for (int g = 0; g < ops; ++g) {
    switch (rng.index(12)) {
      case 0:
        qc.measure(static_cast<int>(rng.index(n)),
                   static_cast<int>(rng.index(clbits)));
        break;
      case 1:
        qc.reset(static_cast<int>(rng.index(n)));
        break;
      case 2: {
        const int width = 1 + static_cast<int>(rng.index(n));
        qc.barrier(distinct_qubits(rng, n, width));
        break;
      }
      default: {
        const OpKind kind = kinds[rng.index(kinds.size())];
        std::vector<double> params(op_num_params(kind));
        for (double& p : params) p = random_param(rng);
        qc.gate(kind, distinct_qubits(rng, n, op_num_qubits(kind)),
                std::move(params));
      }
    }
    if (rng.index(7) == 0 && qc.ops().back().kind != OpKind::Barrier)
      qc.c_if(static_cast<int>(rng.index(qc.cregs().size())),
              rng.index(std::uint64_t{1} << clbits));
  }
  return qc;
}

TEST(QbinRoundtrip, DecodeEncodeIdentityOn500RandomCircuits) {
  for (std::uint64_t seed = 1; seed <= 520; ++seed) {
    const QuantumCircuit qc = random_full_circuit(seed);
    qbin::Bytes payload;
    ASSERT_NO_THROW(payload = qbin::encode(qc)) << "seed " << seed;
    QuantumCircuit back;
    ASSERT_NO_THROW(back = qbin::decode(payload)) << "seed " << seed;
    ASSERT_EQ(back, qc) << "round trip changed the circuit, seed " << seed;
  }
}

TEST(QbinRoundtrip, QasmToQbinToQasmIsAFixedPoint) {
  // qasm → circuit → qbin → circuit → qasm reproduces the QASM spelling
  // exactly: the binary format loses nothing the text format carries.
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const QuantumCircuit qc = random_full_circuit(seed * 31 + 7);
    const std::string text = qasm::emit(qc);
    const QuantumCircuit parsed = qasm::parse(text);
    const QuantumCircuit through = qbin::decode(qbin::encode(parsed));
    EXPECT_EQ(through, parsed) << "seed " << seed;
    EXPECT_EQ(qasm::emit(through), text) << "seed " << seed;
  }
}

TEST(QbinRoundtrip, MultiRegisterCircuitRoundTrips) {
  QuantumCircuit qc;
  qc.add_qreg("alpha", 2);
  qc.add_qreg("beta", 3);
  qc.add_creg("m", 2);
  qc.add_creg("flag", 1);
  qc.h(0).cx(0, 2).ccx(1, 2, 3).rz(0.25, 4);
  qc.measure(0, 0);
  qc.measure(2, 1);
  qc.x(4).c_if(1, 1);
  qc.measure(4, 2);
  const QuantumCircuit back = qbin::decode(qbin::encode(qc));
  EXPECT_EQ(back, qc);
  EXPECT_EQ(back.qregs(), qc.qregs());  // names, sizes AND offsets
  EXPECT_EQ(back.cregs(), qc.cregs());
}

TEST(QbinRoundtrip, ExtremeParametersSurviveBitwise) {
  QuantumCircuit qc(2, 2);
  qc.rz(PI, 0);
  qc.rx(5e-324, 1);                      // smallest denormal
  qc.u(0.1 + 0.2, -PI / 3, 1.0 / 3.0, 0);
  qc.cp(-0.0, 0, 1);                     // sign of zero must survive
  qc.ry(std::numeric_limits<double>::max(), 0);
  qc.measure_all();
  const QuantumCircuit back = qbin::decode(qbin::encode(qc));
  ASSERT_EQ(back.ops().size(), qc.ops().size());
  EXPECT_EQ(back, qc);
  for (std::size_t i = 0; i < qc.ops().size(); ++i)
    for (std::size_t j = 0; j < qc.ops()[i].params.size(); ++j)
      EXPECT_EQ(std::bit_cast<std::uint64_t>(back.ops()[i].params[j]),
                std::bit_cast<std::uint64_t>(qc.ops()[i].params[j]))
          << "op " << i << " param " << j;
}

TEST(QbinRoundtrip, NaNPayloadBitsSurvive) {
  // operator== can't see NaN equality, so check the bit pattern directly:
  // a quiet NaN with a distinctive payload must come back identical.
  const std::uint64_t nan_bits = 0x7FF8DEADBEEF0001ull;
  QuantumCircuit qc(1);
  qc.rz(std::bit_cast<double>(nan_bits), 0);
  const QuantumCircuit back = qbin::decode(qbin::encode(qc));
  ASSERT_EQ(back.ops().size(), 1u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.ops()[0].params[0]), nan_bits);
}

TEST(QbinRoundtrip, EdgeShapedCircuitsRoundTrip) {
  EXPECT_EQ(qbin::decode(qbin::encode(QuantumCircuit{})), QuantumCircuit{});

  QuantumCircuit no_ops(4, 2);
  EXPECT_EQ(qbin::decode(qbin::encode(no_ops)), no_ops);

  QuantumCircuit qonly(3);  // no classical registers at all
  qonly.h(0).cx(0, 1).ccx(0, 1, 2);
  EXPECT_EQ(qbin::decode(qbin::encode(qonly)), qonly);

  // A zero-width barrier is expressible in the IR via append.
  QuantumCircuit zb(2);
  Operation op;
  op.kind = OpKind::Barrier;
  zb.append(op);
  EXPECT_EQ(qbin::decode(qbin::encode(zb)), zb);

  // Conditions with large values on measure as well as gates.
  QuantumCircuit cond(2, 2);
  cond.x(0).c_if(0, 3);
  cond.measure(0, 0);
  cond.ops().back().cond_reg = 0;
  cond.ops().back().cond_val = std::uint64_t{1} << 60;
  EXPECT_EQ(qbin::decode(qbin::encode(cond)), cond);
}

TEST(QbinRoundtrip, ReaderMatchesMemoryDecodeAtAnyChunkSize) {
  std::ostringstream all;
  std::vector<QuantumCircuit> circuits;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    circuits.push_back(random_full_circuit(seed * 977));
    qbin::encode(circuits.back(), all);
  }
  const std::string blob = all.str();
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{4096}}) {
    std::istringstream in(blob);
    qbin::Reader reader(in, chunk);
    for (std::size_t i = 0; i < circuits.size(); ++i) {
      ASSERT_FALSE(reader.at_end()) << "chunk " << chunk << " circuit " << i;
      QuantumCircuit got;
      ASSERT_NO_THROW(got = reader.read())
          << "chunk " << chunk << " circuit " << i;
      EXPECT_EQ(got, circuits[i]) << "chunk " << chunk << " circuit " << i;
    }
    // The reader consumed each payload exactly: the stream is at EOF, not
    // mid-payload, and the byte count matches the blob.
    EXPECT_TRUE(reader.at_end()) << "chunk " << chunk;
    EXPECT_EQ(reader.bytes_consumed(), blob.size()) << "chunk " << chunk;
  }
}

TEST(QbinRoundtrip, StreamDecodeConvenienceMatchesMemory) {
  const QuantumCircuit qc = random_full_circuit(424242);
  const qbin::Bytes payload = qbin::encode(qc);
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(payload.data()),
                  payload.size()));
  EXPECT_EQ(qbin::decode(in), qc);
}

TEST(QbinRoundtrip, StructuralDigestMatchesPayloadDigest) {
  // The digest computed from the circuit (no allocation) and the digest
  // read off the encoded payload (no decode) are the same value — the
  // property that lets the service batch pre-encoded submissions with
  // circuit submissions.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const QuantumCircuit qc = random_full_circuit(seed * 131 + 5);
    EXPECT_EQ(qbin::structural_digest(qc),
              qbin::structural_digest(qbin::encode(qc)))
        << "seed " << seed;
  }
}

TEST(QbinRoundtrip, StructuralDigestIsParameterBlind) {
  QuantumCircuit a(3, 3), b(3, 3);
  a.rx(0.1, 0).rz(0.2, 1).cu(0.3, 0.4, 0.5, 0, 2);
  b.rx(-1.9, 0).rz(5e-324, 1).cu(-0.0, 2.2, 3.3, 0, 2);
  EXPECT_EQ(qbin::structural_digest(a), qbin::structural_digest(b));

  // ...but sensitive to every structural dimension.
  QuantumCircuit c(3, 3);
  c.rx(0.1, 0).rz(0.2, 1).cu(0.3, 0.4, 0.5, 1, 2);  // different qubit
  EXPECT_NE(qbin::structural_digest(a), qbin::structural_digest(c));
  QuantumCircuit d(3, 3);
  d.ry(0.1, 0).rz(0.2, 1).cu(0.3, 0.4, 0.5, 0, 2);  // different kind
  EXPECT_NE(qbin::structural_digest(a), qbin::structural_digest(d));
  QuantumCircuit e(3, 3);
  e.rx(0.1, 0).rz(0.2, 1).cu(0.3, 0.4, 0.5, 0, 2);
  e.ops().back().cond_reg = 0;  // same ops, now conditioned
  e.ops().back().cond_val = 1;
  EXPECT_NE(qbin::structural_digest(a), qbin::structural_digest(e));
}

TEST(QbinRoundtrip, ParameterPoolDeduplicatesRepeatedAngles) {
  // 400 rotations by the same two angles: the pool stores 2 doubles, not
  // 400, so the payload stays far below 8 bytes per parameter.
  QuantumCircuit qc(4);
  for (int i = 0; i < 400; ++i)
    qc.rz(i % 2 == 0 ? 0.25 : -0.75, i % 4);
  const qbin::Bytes payload = qbin::encode(qc);
  // Upper bound: header + ops (~3 B each) + pool (2×8 B) + one index byte
  // per slot. Without dedup the params alone would be 3200 bytes.
  EXPECT_LT(payload.size(), 2000u);
  EXPECT_EQ(qbin::decode(payload), qc);
}

TEST(QbinRoundtrip, StrictFramingIsEnforced) {
  const QuantumCircuit qc = random_full_circuit(99);
  qbin::Bytes payload = qbin::encode(qc);

  qbin::Bytes trailing = payload;
  trailing.push_back(0x00);
  EXPECT_THROW(
      {
        try {
          qbin::decode(trailing);
        } catch (const qbin::DecodeError& e) {
          EXPECT_EQ(e.code(), qbin::DecodeErrc::TrailingBytes);
          throw;
        }
      },
      qbin::DecodeError);

  qbin::Bytes short_payload(payload.begin(), payload.end() - 1);
  EXPECT_THROW(
      {
        try {
          qbin::decode(short_payload);
        } catch (const qbin::DecodeError& e) {
          EXPECT_EQ(e.code(), qbin::DecodeErrc::Truncated);
          throw;
        }
      },
      qbin::DecodeError);
}

TEST(QbinRoundtrip, EncodeRejectsUnrepresentableCircuits) {
  // States reachable only by mutating ops() in place; rejecting them keeps
  // "every encoded payload round-trips" unconditional.
  QuantumCircuit clbit_on_gate(2, 2);
  clbit_on_gate.x(0);
  clbit_on_gate.ops().back().clbits.push_back(0);
  EXPECT_THROW(qbin::encode(clbit_on_gate), std::invalid_argument);

  QuantumCircuit barrier_params(2);
  barrier_params.barrier();
  barrier_params.ops().back().params.push_back(1.0);
  EXPECT_THROW(qbin::encode(barrier_params), std::invalid_argument);

  QuantumCircuit stale_cond_val(2, 2);
  stale_cond_val.x(0);
  stale_cond_val.ops().back().cond_val = 7;  // unconditioned but val != 0
  EXPECT_THROW(qbin::encode(stale_cond_val), std::invalid_argument);
}

TEST(QbinRoundtrip, FingerprintKnobOverrides) {
  qbin::set_fingerprint_enabled(0);
  EXPECT_FALSE(qbin::fingerprint_enabled());
  qbin::set_fingerprint_enabled(1);
  EXPECT_TRUE(qbin::fingerprint_enabled());
  qbin::set_fingerprint_enabled(-1);  // back to env/default (on in tests)
  EXPECT_TRUE(qbin::fingerprint_enabled());
}

}  // namespace
}  // namespace qtc
