#include "map/mapping.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "arch/coupling_map.hpp"
#include "core/rng.hpp"
#include "sim/simulator.hpp"
#include "transpiler/decompose.hpp"
#include "transpiler/direction.hpp"

namespace qtc::map {
namespace {

/// Routed circuits contain SWAPs; lower them to CX before simulating and
/// check equivalence to the logical circuit under the final layout.
void expect_mapped_equivalent(const QuantumCircuit& logical,
                              const MappingResult& result,
                              const arch::CouplingMap& coupling) {
  EXPECT_TRUE(transpiler::satisfies_connectivity(result.circuit, coupling));
  const QuantumCircuit lowered =
      transpiler::DecomposeMultiQubit().run(result.circuit);
  sim::StatevectorSimulator sim;
  const auto mapped_sv = sim.statevector(lowered).amplitudes();
  const auto logical_sv = sim.statevector(logical).amplitudes();
  const auto expected =
      embed_state(logical_sv, result.final_layout, coupling.num_qubits());
  EXPECT_TRUE(states_equal_up_to_phase(mapped_sv, expected, 1e-8));
}

QuantumCircuit random_cx_circuit(int n, int gates, std::uint64_t seed) {
  Rng rng(seed);
  QuantumCircuit qc(n);
  for (int g = 0; g < gates; ++g) {
    if (rng.index(3) == 0) {
      qc.h(static_cast<int>(rng.index(n)));
    } else {
      const int a = static_cast<int>(rng.index(n));
      const int b = (a + 1 + static_cast<int>(rng.index(n - 1))) % n;
      qc.cx(a, b);
    }
  }
  return qc;
}

TEST(Layout, TrivialAndSwap) {
  Layout layout = Layout::trivial(3, 5);
  EXPECT_EQ(layout.l2p, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(layout.p2l[4], -1);
  layout.swap_physical(0, 4);
  EXPECT_EQ(layout.l2p[0], 4);
  EXPECT_EQ(layout.p2l[0], -1);
  EXPECT_EQ(layout.p2l[4], 0);
  layout.swap_physical(1, 4);
  EXPECT_EQ(layout.l2p[0], 1);
  EXPECT_EQ(layout.l2p[1], 4);
}

TEST(Layout, TooManyLogicalThrows) {
  EXPECT_THROW(Layout::trivial(6, 5), std::invalid_argument);
}

TEST(EmbedState, PlacesAmplitudesByLayout) {
  // Logical |10> (q1=1) with layout {q0->2, q1->0} becomes physical |001>.
  Layout layout;
  layout.l2p = {2, 0};
  layout.p2l = {1, -1, 0};
  const std::vector<cplx> logical{0, 0, 1, 0};
  const auto phys = embed_state(logical, layout, 3);
  EXPECT_NEAR(std::abs(phys[0b001]), 1.0, 1e-12);
}

class MapperSuite : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<Mapper> make_mapper() const {
    switch (GetParam()) {
      case 0:
        return std::make_unique<NaiveMapper>();
      case 1:
        return std::make_unique<SabreMapper>();
      default:
        return std::make_unique<AStarMapper>();
    }
  }
};

TEST_P(MapperSuite, AdjacentGatesNeedNoSwaps) {
  QuantumCircuit qc(5);
  qc.cx(1, 0).cx(2, 1).cx(3, 2).cx(3, 4);
  const auto result = make_mapper()->run(qc, arch::ibm_qx4());
  EXPECT_EQ(result.swaps_inserted, 0);
  expect_mapped_equivalent(qc, result, arch::ibm_qx4());
}

TEST_P(MapperSuite, DistantGateGetsRouted) {
  QuantumCircuit qc(5);
  qc.cx(0, 4);  // distance 2 on QX4 under the trivial layout
  const auto result = make_mapper()->run(qc, arch::ibm_qx4());
  // Either SWAPs route the gate, or (bidirectional SABRE) the mapper found
  // an initial placement where the operands are already adjacent.
  if (result.swaps_inserted == 0) {
    EXPECT_EQ(arch::ibm_qx4().distance(result.initial.l2p[0],
                                       result.initial.l2p[4]),
              1);
  }
  expect_mapped_equivalent(qc, result, arch::ibm_qx4());
}

TEST_P(MapperSuite, Fig1CircuitOnQx4) {
  QuantumCircuit qc(4);
  qc.h(2).cx(2, 3).cx(0, 1).h(1).cx(1, 2).t(0).cx(2, 0).cx(0, 1);
  const auto result = make_mapper()->run(qc, arch::ibm_qx4());
  expect_mapped_equivalent(qc, result, arch::ibm_qx4());
}

TEST_P(MapperSuite, RandomCircuitsOnLinearDevice) {
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    const QuantumCircuit qc = random_cx_circuit(5, 25, seed);
    const auto result = make_mapper()->run(qc, arch::linear(5));
    expect_mapped_equivalent(qc, result, arch::linear(5));
  }
}

TEST_P(MapperSuite, RandomCircuitsOnQx5) {
  const QuantumCircuit qc = random_cx_circuit(8, 30, 7);
  const auto result = make_mapper()->run(qc, arch::ibm_qx5());
  expect_mapped_equivalent(qc, result, arch::ibm_qx5());
}

TEST_P(MapperSuite, MeasurementsFollowTheLayout) {
  QuantumCircuit qc(3, 3);
  qc.cx(0, 2).cx(0, 1);
  qc.measure(0, 0).measure(1, 1).measure(2, 2);
  const auto result = make_mapper()->run(qc, arch::linear(3));
  // Every measure lands on the physical qubit currently hosting its logical
  // operand: collecting measure targets per clbit must match final layout.
  for (const auto& op : result.circuit.ops()) {
    if (op.kind == OpKind::Measure) {
      EXPECT_EQ(op.qubits[0], result.final_layout.l2p[op.clbits[0]]);
    }
  }
}

TEST_P(MapperSuite, ThreeQubitGateRejected) {
  QuantumCircuit qc(3);
  qc.ccx(0, 1, 2);
  EXPECT_THROW(make_mapper()->run(qc, arch::linear(3)),
               std::invalid_argument);
}

TEST_P(MapperSuite, CircuitLargerThanDeviceRejected) {
  QuantumCircuit qc(6);
  qc.h(0);
  EXPECT_THROW(make_mapper()->run(qc, arch::ibm_qx4()),
               std::invalid_argument);
}

std::string mapper_name(const ::testing::TestParamInfo<int>& info) {
  if (info.param == 0) return "naive";
  if (info.param == 1) return "sabre";
  return "astar";
}

INSTANTIATE_TEST_SUITE_P(AllMappers, MapperSuite, ::testing::Values(0, 1, 2),
                         mapper_name);

TEST(MapperComparison, ImprovedMappersBeatNaiveOnLongRandomCircuit) {
  // The paper's Sec. V-B claim: smarter mapping inserts fewer gates. On a
  // long random circuit over a line, A* and SABRE should not be worse.
  const QuantumCircuit qc = random_cx_circuit(8, 60, 5);
  const auto naive = NaiveMapper().run(qc, arch::linear(8));
  const auto sabre = SabreMapper().run(qc, arch::linear(8));
  const auto astar = AStarMapper().run(qc, arch::linear(8));
  EXPECT_LE(sabre.swaps_inserted, naive.swaps_inserted);
  EXPECT_LE(astar.swaps_inserted, naive.swaps_inserted);
}

TEST(MapperComparison, AStarIsOptimalForSingleGate) {
  // One distant CX on a line of 6: optimal is distance-1 swaps = 4.
  QuantumCircuit qc(6);
  qc.cx(0, 5);
  const auto astar = AStarMapper().run(qc, arch::linear(6));
  EXPECT_EQ(astar.swaps_inserted, 4);
}

}  // namespace
}  // namespace qtc::map
