// Engine dispatch and SIMD kernel-layer tests.
//
// Dispatch: the automatic engine choice must route pure-Clifford circuits to
// the stabilizer tableau (verified end-to-end through exec::execute with the
// engine-use counters, including a 100-qubit GHZ no array engine could
// hold), must never hand a mid-circuit-measurement circuit to the DD engine,
// and must always yield to an explicit override.
//
// SIMD: the vector kernels are validated two ways — a NEAR(1e-12) sweep of
// scalar vs SIMD full states, and golden bit-pattern fixtures captured from
// the pre-SIMD kernels which the scalar fallback (and, by the layer's no-FMA
// determinism contract, the vector paths too) must reproduce exactly.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "arch/backend.hpp"
#include "arch/coupling_map.hpp"
#include "exec/execute.hpp"
#include "noise/noise_model.hpp"
#include "sim/dispatch.hpp"
#include "sim/fusion.hpp"
#include "sim/simd.hpp"
#include "sim/simulator.hpp"

namespace qtc {
namespace {

using sim::Engine;

/// Noiseless options: dispatch only ever fires on noise-free runs, so every
/// routing test pins an explicitly empty noise model.
exec::ExecuteOptions noiseless_options(const noise::NoiseModel& model) {
  exec::ExecuteOptions opts;
  opts.transpile = false;  // keep the circuit's gate kinds (no U/CX rebase)
  opts.noise_model = &model;
  opts.shots = 64;
  return opts;
}

arch::Backend linear_backend(int n) {
  return arch::Backend(arch::linear(n), arch::Calibration{});
}

// --- dispatch decision tree -------------------------------------------------

TEST(Dispatch, ProfileSeesStructure) {
  QuantumCircuit qc(3, 3);
  qc.h(0).cx(0, 1).t(2).measure_all();
  const sim::CircuitProfile p = sim::profile_circuit(qc);
  EXPECT_EQ(p.num_qubits, 3);
  EXPECT_EQ(p.unitary_gates, 3);
  EXPECT_EQ(p.entangling_gates, 1);
  EXPECT_FALSE(p.clifford_only);  // T is not Clifford
  EXPECT_TRUE(p.has_measurements);
  EXPECT_TRUE(p.measurements_final);
  EXPECT_TRUE(p.dd_compatible());
}

TEST(Dispatch, MidCircuitMeasurementIsNeverDDEligible) {
  QuantumCircuit qc(2, 2);
  qc.h(0).measure(0, 0).cx(0, 1).measure(1, 1);  // gate after a measurement
  const sim::CircuitProfile p = sim::profile_circuit(qc);
  EXPECT_FALSE(p.measurements_final);
  EXPECT_FALSE(p.dd_compatible());
  EXPECT_NE(sim::choose_engine(p).engine, Engine::DecisionDiagram);

  QuantumCircuit with_reset(2, 2);
  with_reset.h(0).reset(0).h(1).measure_all();
  EXPECT_FALSE(sim::profile_circuit(with_reset).dd_compatible());
  EXPECT_NE(sim::choose_engine(with_reset).engine, Engine::DecisionDiagram);
}

TEST(Dispatch, CliffordCircuitChoosesStabilizer) {
  QuantumCircuit qc(4, 4);
  qc.h(0).cx(0, 1).s(2).cz(1, 2).swap(2, 3).measure_all();
  EXPECT_EQ(sim::choose_engine(qc).engine, Engine::Stabilizer);
}

TEST(Dispatch, SparseCircuitChoosesDD) {
  // 10 qubits, one entangling chain: entangling gates (9) <= 2n, T gates
  // keep it out of the Clifford route.
  QuantumCircuit qc(10, 10);
  qc.h(0);
  for (int q = 0; q < 9; ++q) qc.cx(q, q + 1);
  qc.t(9);
  qc.measure_all();
  const sim::DispatchDecision d = sim::choose_engine(qc);
  EXPECT_EQ(d.engine, Engine::DecisionDiagram);
  EXPECT_STREQ(d.reason, "sparse entanglement structure");
}

TEST(Dispatch, DenseNonCliffordChoosesStatevector) {
  QuantumCircuit qc(4, 4);
  for (int layer = 0; layer < 5; ++layer) {
    for (int q = 0; q < 4; ++q) qc.t(q);
    for (int q = 0; q < 3; ++q) qc.cx(q, q + 1);
    for (int q = 0; q < 3; ++q) qc.cp(0.3 * (q + 1), q, q + 1);
  }
  qc.measure_all();
  EXPECT_EQ(sim::choose_engine(qc).engine, Engine::Statevector);
}

// --- end-to-end routing through exec::execute -------------------------------

TEST(Dispatch, CliffordRunsOnStabilizerEndToEnd) {
  const noise::NoiseModel noiseless;
  const arch::Backend backend = linear_backend(3);
  QuantumCircuit qc(3, 3);
  qc.h(0).cx(0, 1).cx(1, 2).measure_all();
  sim::reset_engine_run_counters();
  const exec::ExecuteResult r =
      exec::execute(qc, backend, noiseless_options(noiseless));
  EXPECT_EQ(r.engine, Engine::Stabilizer);
  EXPECT_STREQ(r.dispatch_reason, "clifford-only gate set");
  EXPECT_EQ(sim::engine_runs(Engine::Stabilizer), 1u);
  EXPECT_EQ(sim::engine_runs(Engine::Statevector), 0u);
  // GHZ: only all-zeros and all-ones outcomes.
  for (const auto& [bits, count] : r.counts.histogram) {
    EXPECT_TRUE(bits == "000" || bits == "111") << bits;
    EXPECT_GT(count, 0);
  }
}

TEST(Dispatch, HundredQubitGhzRoutesToStabilizer) {
  // Far beyond any 2^n array: only the tableau engine can take this, and
  // the dispatcher must find that out on its own.
  constexpr int kN = 100;
  const noise::NoiseModel noiseless;
  const arch::Backend backend = linear_backend(kN);
  QuantumCircuit qc(kN, kN);
  qc.h(0);
  for (int q = 0; q < kN - 1; ++q) qc.cx(q, q + 1);  // nearest-neighbor GHZ
  qc.measure_all();
  sim::reset_engine_run_counters();
  exec::ExecuteOptions opts = noiseless_options(noiseless);
  opts.shots = 32;
  const exec::ExecuteResult r = exec::execute(qc, backend, opts);
  EXPECT_EQ(r.engine, Engine::Stabilizer);
  EXPECT_EQ(sim::engine_runs(Engine::Stabilizer), 1u);
  const std::string zeros(kN, '0'), ones(kN, '1');
  int total = 0;
  for (const auto& [bits, count] : r.counts.histogram) {
    EXPECT_TRUE(bits == zeros || bits == ones) << bits;
    total += count;
  }
  EXPECT_EQ(total, 32);
}

TEST(Dispatch, SparseCircuitRunsOnDDEndToEnd) {
  const noise::NoiseModel noiseless;
  const arch::Backend backend = linear_backend(10);
  QuantumCircuit qc(10, 10);
  qc.h(0);
  for (int q = 0; q < 9; ++q) qc.cx(q, q + 1);
  qc.t(9);
  qc.measure_all();
  sim::reset_engine_run_counters();
  const exec::ExecuteResult r =
      exec::execute(qc, backend, noiseless_options(noiseless));
  EXPECT_EQ(r.engine, Engine::DecisionDiagram);
  EXPECT_EQ(sim::engine_runs(Engine::DecisionDiagram), 1u);
}

TEST(Dispatch, ExplicitOverrideBeatsTheDispatcher) {
  const noise::NoiseModel noiseless;
  const arch::Backend backend = linear_backend(3);
  QuantumCircuit qc(3, 3);
  qc.h(0).cx(0, 1).cx(1, 2).measure_all();  // would auto-route to stabilizer
  sim::reset_engine_run_counters();
  exec::ExecuteOptions opts = noiseless_options(noiseless);
  opts.engine = Engine::Statevector;
  const exec::ExecuteResult r = exec::execute(qc, backend, opts);
  EXPECT_EQ(r.engine, Engine::Statevector);
  EXPECT_STREQ(r.dispatch_reason, "explicit override");
  EXPECT_EQ(sim::engine_runs(Engine::Statevector), 1u);
  EXPECT_EQ(sim::engine_runs(Engine::Stabilizer), 0u);
}

TEST(Dispatch, NoisyRunsPinToTrajectoryEngine) {
  // Default execution derives noise from the backend; a Clifford circuit
  // must still run on the trajectory engine then.
  const noise::NoiseModel noisy = noise::uniform_depolarizing(0.01, 0.05);
  ASSERT_TRUE(noisy.has_noise());
  const arch::Backend backend = linear_backend(2);
  QuantumCircuit qc(2, 2);
  qc.h(0).cx(0, 1).measure_all();
  sim::reset_engine_run_counters();
  exec::ExecuteOptions opts = noiseless_options(noisy);
  const exec::ExecuteResult r = exec::execute(qc, backend, opts);
  EXPECT_EQ(r.engine, Engine::Statevector);
  EXPECT_STREQ(r.dispatch_reason, "noise model active");
  // Requesting an engine that cannot apply Kraus channels is a contract
  // violation, not a silent fallback.
  opts.engine = Engine::Stabilizer;
  EXPECT_THROW(exec::execute(qc, backend, opts), std::invalid_argument);
  opts.engine = Engine::DecisionDiagram;
  EXPECT_THROW(exec::execute(qc, backend, opts), std::invalid_argument);
}

TEST(Dispatch, KnobDisablesAutomaticRouting) {
  const noise::NoiseModel noiseless;
  const arch::Backend backend = linear_backend(3);
  QuantumCircuit qc(3, 3);
  qc.h(0).cx(0, 1).cx(1, 2).measure_all();
  sim::set_dispatch_enabled(0);
  const exec::ExecuteResult r =
      exec::execute(qc, backend, noiseless_options(noiseless));
  sim::set_dispatch_enabled(-1);
  EXPECT_EQ(r.engine, Engine::Statevector);
  EXPECT_STREQ(r.dispatch_reason, "dispatch disabled");
}

// --- SIMD kernel layer ------------------------------------------------------

/// Exercises every specialized kernel once fused: 1q runs, diagonal runs,
/// permutation runs, controlled and dense merges. Mirrors the circuit the
/// golden fixtures below were captured from (pre-SIMD build).
QuantumCircuit kernel_mix_circuit() {
  QuantumCircuit qc(5, 5);
  qc.h(0).h(1).h(2).h(3).h(4);
  qc.t(0).rz(0.3, 1).cz(0, 1).cp(0.7, 1, 2);
  qc.x(2).cx(2, 3).swap(3, 4);
  qc.ccx(0, 1, 2).crx(0.5, 2, 3);
  qc.u(0.4, 0.2, -0.6, 4).sx(0).ry(1.1, 1);
  qc.cx(0, 4).rz(-0.9, 4).h(3).cz(3, 4);
  qc.rxx(0.25, 0, 1).t(2).tdg(3);
  return qc;
}

QuantumCircuit deep_circuit() {
  QuantumCircuit qc(6, 6);
  for (int layer = 0; layer < 4; ++layer) {
    for (int q = 0; q < 6; ++q) qc.u(0.1 * (layer + 1), 0.2 * q, -0.15 * q, q);
    for (int q = 0; q < 5; ++q) qc.cx(q, q + 1);
    for (int q = 0; q < 6; ++q) qc.rz(0.05 * (q + 1) * (layer + 1), q);
    qc.swap(0, 5).ccx(1, 2, 3).cp(0.33 * (layer + 1), 4, 5);
  }
  return qc;
}

sim::AmpVector run_state(const QuantumCircuit& qc, int fusion, int simd) {
  sim::set_fusion_enabled(fusion);
  sim::simd::set_simd_enabled(simd);
  sim::StatevectorSimulator svsim;
  sim::AmpVector amps = svsim.statevector(qc).amplitudes();
  sim::simd::set_simd_enabled(-1);
  sim::set_fusion_enabled(-1);
  return amps;
}

TEST(Simd, ScalarAndVectorStatesAgree) {
  for (const auto& qc : {kernel_mix_circuit(), deep_circuit()}) {
    for (int fusion = 0; fusion <= 1; ++fusion) {
      const sim::AmpVector scalar = run_state(qc, fusion, 0);
      const sim::AmpVector vec = run_state(qc, fusion, 1);
      ASSERT_EQ(scalar.size(), vec.size());
      for (std::size_t i = 0; i < scalar.size(); ++i) {
        EXPECT_NEAR(scalar[i].real(), vec[i].real(), 1e-12);
        EXPECT_NEAR(scalar[i].imag(), vec[i].imag(), 1e-12);
      }
    }
  }
}

struct GoldenAmp {
  std::uint64_t re, im;
};

void expect_bitwise(const sim::AmpVector& amps, const GoldenAmp* golden,
                    std::size_t n) {
  ASSERT_EQ(amps.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t re, im;
    const double r = amps[i].real(), m = amps[i].imag();
    std::memcpy(&re, &r, 8);
    std::memcpy(&im, &m, 8);
    EXPECT_EQ(re, golden[i].re) << "real bits differ at amplitude " << i;
    EXPECT_EQ(im, golden[i].im) << "imag bits differ at amplitude " << i;
  }
}

// Bit patterns captured from the pre-SIMD kernels (same circuits, same
// build flags). The scalar fallback must reproduce them exactly — it *is*
// those kernels — and the vector paths must too, by the no-FMA contract.
constexpr GoldenAmp kGoldenMixFusionOff[32] = {
    {0x3fcf214fc633f384ull, 0x3fbf2751dc5bbb02ull},
    {0x3f65051dc68088fcull, 0x3fc19d54ed0116dbull},
    {0xbfac6aa08c44c742ull, 0x3fbea3036c7f2e46ull},
    {0x3fd4078bc98d991full, 0xbfc09370183db071ull},
    {0x3faf165b093f940cull, 0x3fc69138a788b958ull},
    {0xbfbd699f3729fcefull, 0x3fba0755c48d9539ull},
    {0x3fa07447c99e8e3cull, 0x3fc305478fdc07c1ull},
    {0x3fdae60de6b8f303ull, 0x3fae846a4c80a8d8ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x3fd1c4768057bf12ull, 0xbfd435f38068772bull},
    {0x3fa9a976935fd4e7ull, 0x3fb1b5e032179c08ull},
    {0x3fc2fbc8d567a453ull, 0x3fc0c643abc91a92ull},
    {0x3fbeab71d92b19fbull, 0xbfc8be089dc38547ull},
    {0x3fd404527074ba4full, 0xbfa0eeef663413a0ull},
    {0xbfa92776bd0fd00cull, 0x3fb5dd6d5fcca8fbull},
    {0x3fc97d8bbc964783ull, 0x3f9776954b83ac64ull},
    {0x3fd1757708727beeull, 0xbfbf840a63fdf7bdull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
};

constexpr GoldenAmp kGoldenMixFusionOn[32] = {
    {0x3fcf214fc633f384ull, 0x3fbf2751dc5bbb02ull},
    {0x3f65051dc68088fcull, 0x3fc19d54ed0116dbull},
    {0xbfac6aa08c44c742ull, 0x3fbea3036c7f2e46ull},
    {0x3fd4078bc98d991full, 0xbfc09370183db072ull},
    {0x3faf165b093f940cull, 0x3fc69138a788b958ull},
    {0xbfbd699f3729fcf0ull, 0x3fba0755c48d9538ull},
    {0x3fa07447c99e8e3cull, 0x3fc305478fdc07c1ull},
    {0x3fdae60de6b8f303ull, 0x3fae846a4c80a8d8ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x3fd1c4768057bf12ull, 0xbfd435f38068772bull},
    {0x3fa9a976935fd4e6ull, 0x3fb1b5e032179c08ull},
    {0x3fc2fbc8d567a453ull, 0x3fc0c643abc91a91ull},
    {0x3fbeab71d92b19fbull, 0xbfc8be089dc38547ull},
    {0x3fd404527074ba4full, 0xbfa0eeef663413a0ull},
    {0xbfa92776bd0fd00cull, 0x3fb5dd6d5fcca8fbull},
    {0x3fc97d8bbc964783ull, 0x3f9776954b83ac64ull},
    {0x3fd1757708727beeull, 0xbfbf840a63fdf7bdull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
    {0x0000000000000000ull, 0x0000000000000000ull},
};

constexpr GoldenAmp kGoldenDeepFusionOn[64] = {
    {0x3fdd094a495e0e2aull, 0x3fe4e0144153d42full},
    {0xbfc64628c065ab00ull, 0xbf89b58627269090ull},
    {0xbf98734b2f477fa5ull, 0x3fa08f5e8cb39690ull},
    {0x3fb5fbb2cfa82e4cull, 0x3f72fad3bec8b829ull},
    {0xbfa2ae2b2266c745ull, 0x3f7f9fd63c851c84ull},
    {0x3fb24693d5e20b4full, 0x3fa3ff0cbf563693ull},
    {0xbfa089326ce1a726ull, 0xbf93ab4eacd39264ull},
    {0x3fa2b01791e6498full, 0x3f8523ebde740a57ull},
    {0xbfa6400a8ae2544cull, 0x3f6714ec71692cd8ull},
    {0x3f7563d674ffaa56ull, 0xbf7198eddd51c07dull},
    {0xbf52b8ea0365c73bull, 0x3f59841a209c29f7ull},
    {0x3f6e3afe1ce39378ull, 0xbf6abe7acd015e90ull},
    {0xbf8c1473d7c5eb3eull, 0xbf924b86b9d8364aull},
    {0x3f9ad9d31b884881ull, 0xbfaf3365ddb0fe77ull},
    {0xbfa614fa9e259d6eull, 0x3f9b00a032abe900ull},
    {0x3fab8e931f2b4655ull, 0x3fb3fbd0fb4eb992ull},
    {0xbf9466f7dbb54f22ull, 0xbfa4d84cf0bd6d0aull},
    {0xbfbd33d7dc360b27ull, 0xbfbd5d387710b569ull},
    {0x3f7fbc749e474fffull, 0xbf7a274f48bd4774ull},
    {0x3f8bed3703274c30ull, 0xbf83d770c0a783b7ull},
    {0x3f8b96c387ca1e39ull, 0xbf733ada592bde3cull},
    {0x3f87b3d19da1bf8bull, 0xbf90e505db9e1744ull},
    {0x3f880ec95023e14full, 0xbfb574b69a89bdb1ull},
    {0x3fb8935b873adfa2ull, 0xbfc254dcbded7a3cull},
    {0xbfa0ff8288b785b4ull, 0xbfa450d30f17353bull},
    {0xbf8102929365efacull, 0xbfc494c6810cfc65ull},
    {0x3f9c2729ab1f8359ull, 0x3fa6b751bc8da034ull},
    {0x3fa224bcb048396cull, 0xbf8d16e7312393fdull},
    {0xbf8f03983c65ae1dull, 0xbfaa6b40e77fb343ull},
    {0x3fb04ed69131e218ull, 0xbfc42ee20c17f241ull},
    {0xbfa2d829c55d725bull, 0xbf93294edd91b819ull},
    {0xbf833745c69973deull, 0x3f5a8b5a3d6d3bf0ull},
    {0x3f79b672c859973cull, 0xbf89d254685187fbull},
    {0x3f411d54a3f257ecull, 0xbf85b42e68ea43bbull},
    {0xbf644be5009378eeull, 0xbf84739647ff475cull},
    {0x3f94dd6f14b71af3ull, 0xbf92cb373aa936c4ull},
    {0x3fa4581a30db646cull, 0x3f999461b0f8dcadull},
    {0xbf6d7045267249aeull, 0xbf7a9d6ae5e502d5ull},
    {0x3fb47c7522017091ull, 0xbfb916163ae137e2ull},
    {0x3f68c42b662cf1a0ull, 0x3fa1e9e4e27234d4ull},
    {0x3f9be12c9ae04b2dull, 0xbf77d065452bf924ull},
    {0x3f9fac1b9d4257f3ull, 0x3f7d527bcd217c9cull},
    {0x3fc3435e5b46a6f4ull, 0xbfa643bc4106f24aull},
    {0x3f8130d6b59a6916ull, 0x3f95f9e7d56960d5ull},
    {0x3fbb9d5d94e5188aull, 0xbf982d8d970da4b8ull},
    {0xbfc13b489894eac7ull, 0x3fb27c6b1e49cd33ull},
    {0xbf9a037dd9285788ull, 0x3f84d55e52e84983ull},
    {0x3fa1a416ad7ffad7ull, 0xbf81e1c2d943e21dull},
    {0x3fa050228ef424adull, 0xbf9a413a0b432313ull},
    {0x3f60f47d0a82dbefull, 0xbf7a9dab6021b3a6ull},
    {0x3f98bd7d05e6e2a4ull, 0xbfa77868f6293317ull},
    {0x3f8d6b3bc9f8dd06ull, 0xbf92e7e812cab890ull},
    {0xbfa25d0165751ee1ull, 0xbfba0a6a5ced1d81ull},
    {0xbfaed39ea224328eull, 0x3f8c554935969df4ull},
    {0x3f97e6e2b467be18ull, 0x3f96a129ec052d9cull},
    {0x3fbaf666b5afacc5ull, 0x3fc2194d43f3cf1aull},
    {0xbf94291d64713f1dull, 0x3f8711819ca11afeull},
    {0x3f8966779c4e4304ull, 0xbf56ee1e9ddfd75cull},
    {0xbf790ba481870ec8ull, 0xbfba9535444a62d6ull},
    {0x3f95f60c38469f2eull, 0x3f88f383bd290ec9ull},
    {0x3f860b2753f30899ull, 0xbf7190b5ce4463eaull},
    {0x3f86ac77d295d662ull, 0xbf8aca3300138b8cull},
    {0xbf9d473cfb443d1bull, 0x3f90ef4172078ab6ull},
    {0xbfbc2a883b70613aull, 0x3fb0507cbcc6c363ull},
};

const std::map<std::string, int> kGoldenCounts = {
    {"00000", 18},
    {"00001", 5},
    {"00010", 7},
    {"00011", 32},
    {"00100", 5},
    {"00101", 4},
    {"00110", 3},
    {"00111", 53},
    {"10000", 43},
    {"10001", 2},
    {"10010", 13},
    {"10011", 8},
    {"10100", 22},
    {"10101", 5},
    {"10110", 11},
    {"10111", 25},
};

TEST(Simd, ScalarFallbackIsBitwiseIdenticalToPreSimdKernels) {
  expect_bitwise(run_state(kernel_mix_circuit(), 0, 0), kGoldenMixFusionOff,
                 32);
  expect_bitwise(run_state(kernel_mix_circuit(), 1, 0), kGoldenMixFusionOn,
                 32);
  expect_bitwise(run_state(deep_circuit(), 1, 0), kGoldenDeepFusionOn, 64);
}

TEST(Simd, VectorPathIsBitwiseIdenticalToPreSimdKernels) {
  // Only meaningful where a vector path exists; on scalar-only hosts (or
  // -DQTC_DISABLE_SIMD builds) this re-checks the fallback, which is fine.
  expect_bitwise(run_state(kernel_mix_circuit(), 0, 1), kGoldenMixFusionOff,
                 32);
  expect_bitwise(run_state(kernel_mix_circuit(), 1, 1), kGoldenMixFusionOn,
                 32);
  expect_bitwise(run_state(deep_circuit(), 1, 1), kGoldenDeepFusionOn, 64);
}

TEST(Simd, FixedSeedCountsMatchPreSimdGoldens) {
  QuantumCircuit qc = kernel_mix_circuit();
  qc.measure_all();
  for (int simd = 0; simd <= 1; ++simd) {
    SCOPED_TRACE(simd ? "simd on" : "simd off");
    sim::set_fusion_enabled(1);
    sim::simd::set_simd_enabled(simd);
    sim::StatevectorSimulator s(12345);
    const auto counts = s.run(qc, 256).counts;
    sim::simd::set_simd_enabled(-1);
    sim::set_fusion_enabled(-1);
    EXPECT_EQ(counts.histogram, kGoldenCounts);
  }
}

TEST(Simd, KnobReportsState) {
  sim::simd::set_simd_enabled(0);
  EXPECT_FALSE(sim::simd::simd_enabled());
  EXPECT_EQ(sim::simd::select(), sim::simd::Isa::Scalar);
  sim::simd::set_simd_enabled(1);
  EXPECT_TRUE(sim::simd::simd_enabled());
  if (sim::simd::vector_available()) {
    EXPECT_NE(sim::simd::select(), sim::simd::Isa::Scalar);
  }
  sim::simd::set_simd_enabled(-1);
  EXPECT_STREQ(sim::simd::isa_name(sim::simd::Isa::Scalar), "scalar");
}

}  // namespace
}  // namespace qtc
